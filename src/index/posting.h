#ifndef KADOP_INDEX_POSTING_H_
#define KADOP_INDEX_POSTING_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "xml/sid.h"

namespace kadop::index {

/// Internal peer identifier (dense integer, also the sim NodeIndex).
using PeerId = uint32_t;
/// Document identifier within a peer.
using DocSeq = uint32_t;

/// Identifier of a document in the collection: (peer, doc).
struct DocId {
  PeerId peer = 0;
  DocSeq doc = 0;

  friend std::strong_ordering operator<=>(const DocId&, const DocId&) =
      default;

  std::string ToString() const {
    return "(" + std::to_string(peer) + "," + std::to_string(doc) + ")";
  }
};

/// One tuple of the Term relation: term t occurs at element
/// (peer, doc, sid) — as its label, or as a word contained in it.
///
/// Header-only and layering-wise *below* the store and DHT libraries: the
/// local stores are specialized to posting payloads, exactly as the paper
/// re-engineered its DHT around a posting-oriented BerkeleyDB store.
struct Posting {
  PeerId peer = 0;
  DocSeq doc = 0;
  xml::StructuralId sid;

  [[nodiscard]] DocId doc_id() const { return DocId{peer, doc}; }

  /// Lexicographic order by (peer, doc, sid) — the clustered order of the
  /// Term relation and the order all posting lists are kept in.
  friend std::strong_ordering operator<=>(const Posting&, const Posting&) =
      default;

  /// Wire/disk footprint: peer(4) + doc(4) + start(4) + end(4) + level(2).
  static constexpr size_t kWireBytes = 18;

  std::string ToString() const {
    return "[" + std::to_string(peer) + "," + std::to_string(doc) + "," +
           sid.ToString() + "]";
  }
};

/// Smallest and largest representable postings (used as range sentinels).
inline constexpr Posting kMinPosting{0, 0, {0, 0, 0}};
inline constexpr Posting kMaxPosting{UINT32_MAX,
                                     UINT32_MAX,
                                     {UINT32_MAX, UINT32_MAX, UINT16_MAX}};

/// An ordered list of postings for one term.
using PostingList = std::vector<Posting>;

/// Wire size of a posting list.
[[nodiscard]] inline size_t PostingListBytes(const PostingList& list) {
  return list.size() * Posting::kWireBytes;
}

/// True if `list` is sorted in the canonical (peer, doc, sid) order.
[[nodiscard]] inline bool IsSortedPostingList(const PostingList& list) {
  for (size_t i = 1; i < list.size(); ++i) {
    if (list[i] < list[i - 1]) return false;
  }
  return true;
}

}  // namespace kadop::index

#endif  // KADOP_INDEX_POSTING_H_
