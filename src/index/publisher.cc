#include "index/publisher.h"

#include <set>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace kadop::index {

namespace {

struct PublishCounters {
  obs::Counter* batches;
  obs::Counter* documents;
  obs::Counter* postings;

  PublishCounters() {
    auto& r = obs::MetricRegistry::Default();
    batches = r.GetCounter("publish.batches");
    documents = r.GetCounter("publish.documents");
    postings = r.GetCounter("publish.postings");
  }
};

PublishCounters& C() {
  static PublishCounters counters;
  return counters;
}

}  // namespace

Publisher::Publisher(dht::DhtPeer* peer, DocStore* doc_store,
                     PublishOptions options)
    : peer_(peer), doc_store_(doc_store), options_(options) {
  KADOP_CHECK(peer_ != nullptr && doc_store_ != nullptr,
              "Publisher requires a peer and a doc store");
}

void Publisher::AckOne() {
  KADOP_CHECK(outstanding_acks_ > 0, "spurious append ack");
  if (--outstanding_acks_ != 0) return;
  // Every base batch and derived delta of this publish is settled; the
  // completion hook observes the post-publish index before `on_done`.
  if (options_.on_complete) options_.on_complete(peer_);
  if (on_done_) {
    auto done = std::move(on_done_);
    on_done_ = nullptr;
    done();
  }
}

void Publisher::Flush(const std::string& key, Buffer buffer) {
  if (buffer.postings.empty()) return;
  stats_.batches++;
  C().batches->Increment();
  outstanding_acks_++;
  std::vector<std::string> types(buffer.types.begin(), buffer.types.end());
  peer_->Append(
      key, std::move(buffer.postings),
      [this](Status st) {
        if (!st.ok()) {
          KADOP_LOG_INFO("publish batch failed: %s", st.ToString().c_str());
        }
        AckOne();
      },
      std::move(types), options_.append_retry);
}

bool Publisher::Unpublish(DocSeq seq) {
  const xml::Document* doc = doc_store_->Unregister(seq);
  if (doc == nullptr) return false;
  // One traversal rebuilds the document's term keys; a whole-document
  // delete goes to each responsible peer.
  std::vector<TermPosting> postings;
  ExtractTerms(*doc, peer_->node(), seq, options_.extract, postings);
  std::set<std::string> keys;
  for (const auto& tp : postings) keys.insert(tp.key);
  const DocId doc_id{peer_->node(), seq};
  for (const std::string& key : keys) {
    peer_->DeleteDoc(key, doc_id);
  }
  // Drop the Doc-relation entry as well.
  peer_->DeleteBlobKey("doc:" + std::to_string(peer_->node()) + ":" +
                       std::to_string(seq));
  // Derived state (view extents) is withdrawn after the base index: the
  // hook's count probes then observe post-delete authoritative counts.
  if (options_.on_unpublish) {
    options_.on_unpublish(peer_, *doc, peer_->node(), seq, postings);
  }
  return true;
}

void Publisher::Publish(const std::vector<const xml::Document*>& docs,
                        std::function<void()> on_done) {
  KADOP_CHECK(on_done_ == nullptr, "publish already in progress");
  on_done_ = std::move(on_done);
  // Hold one virtual ack so completion can't fire before all batches are
  // issued.
  outstanding_acks_ = 1;

  std::map<std::string, Buffer> buffers;
  for (const xml::Document* doc : docs) {
    KADOP_CHECK(doc != nullptr, "null document");
    const DocSeq seq = doc_store_->Register(doc);
    stats_.documents++;
    C().documents->Increment();
    peer_->PutBlob("doc:" + std::to_string(peer_->node()) + ":" +
                       std::to_string(seq),
                   doc->uri);

    // A document's type is its root label (the paper also supports
    // user-specified or schema-inferred types).
    const std::string doc_type = doc->root ? doc->root->label() : "";
    std::vector<TermPosting> postings;
    ExtractTerms(*doc, peer_->node(), seq, options_.extract, postings);
    stats_.postings += postings.size();
    C().postings->Increment(postings.size());
    if (options_.derive) {
      // Derived batches (view deltas) ride the same acked append path as
      // base batches and hold this publish open until applied, but are not
      // counted in the publish.* base-index stats.
      for (DerivedAppend& derived :
           options_.derive(peer_, *doc, peer_->node(), seq, postings)) {
        outstanding_acks_++;
        peer_->Append(
            derived.key, std::move(derived.postings),
            [this, on_ack = std::move(derived.on_ack)](Status st) {
              if (on_ack) on_ack(st);
              AckOne();
            },
            {}, options_.append_retry);
      }
    }
    for (auto& tp : postings) {
      Buffer& buffer = buffers[tp.key];
      buffer.postings.push_back(tp.posting);
      if (!doc_type.empty()) buffer.types.insert(doc_type);
      if (buffer.postings.size() >= options_.batch_postings) {
        Flush(tp.key, std::move(buffer));
        buffer = Buffer();
      }
    }
  }
  for (auto& [key, buffer] : buffers) {
    Flush(key, std::move(buffer));
  }
  // Release the virtual ack.
  AckOne();
}

}  // namespace kadop::index
