#ifndef KADOP_INDEX_PUBLISHER_H_
#define KADOP_INDEX_PUBLISHER_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dht/peer.h"
#include "index/doc_store.h"
#include "index/terms.h"

namespace kadop::index {

/// One extra append derived from a publishing document — e.g. a
/// materialized-view delta (docs/views.md). The publisher ships it through
/// the normal acked `append` path, so batching-era retry + dedup semantics
/// (PR 3) apply unchanged and a network-duplicated delta applies at most
/// once.
struct DerivedAppend {
  std::string key;
  PostingList postings;
  /// Durability ack of this derived batch (may be null). Receives a non-OK
  /// status when the retry budget ran out; the deriving layer treats a
  /// missing/failed ack as "out of sync", never as applied.
  dht::DhtPeer::AppendCallback on_ack;
};

struct PublishOptions {
  /// Postings of the same term are buffered and shipped in batches of at
  /// most this many (Section 3: "postings of the same term are buffered
  /// and sent in batches").
  size_t batch_postings = 512;
  ExtractOptions extract;
  /// Retry policy for the append of each batch. Disabled by default (the
  /// fail-stop workloads need none); chaos workloads enable it so batches
  /// survive drops AND carry a dedup id — without one, a network-duplicated
  /// append is applied twice at the DPP owner, whose directory counts would
  /// drift above the (set-semantics) stored postings.
  dht::RetryPolicy append_retry;
  /// Derivation hook (materialized-view maintenance): called once per
  /// published document with its freshly extracted Term relation; every
  /// returned batch is shipped as an acked append participating in this
  /// publish's completion. Derived postings are not counted in the
  /// `publish.*` base-index stats.
  using DeriveFn = std::function<std::vector<DerivedAppend>(
      dht::DhtPeer* peer, const xml::Document& doc, PeerId peer_id,
      DocSeq seq, const std::vector<TermPosting>& postings)>;
  DeriveFn derive;
  /// Withdrawal hook, called after a document's base-index postings were
  /// deleted, with the same re-extracted Term relation the deletes used.
  using UnpublishHook = std::function<void(
      dht::DhtPeer* peer, const xml::Document& doc, PeerId peer_id,
      DocSeq seq, const std::vector<TermPosting>& postings)>;
  UnpublishHook on_unpublish;
  /// Fires when a publish fully settles (every base batch and derived
  /// delta acked), before the caller's `on_done`. The view catalog resyncs
  /// its base-term version oracle here: a hooked publish accounts for its
  /// own version bumps, so only appends that bypassed the hooks leave the
  /// oracle tripped.
  std::function<void(dht::DhtPeer* peer)> on_complete;
};

/// Publishes documents from one peer: constructs the Term relation in a
/// single traversal per document, registers the document locally, stores
/// the Doc relation entry (doc id -> uri), and ships posting batches via
/// the DHT `append` API. Completion fires when every batch is acked by its
/// responsible peer.
class Publisher {
 public:
  Publisher(dht::DhtPeer* peer, DocStore* doc_store,
            PublishOptions options = {});

  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  /// Publishes `docs` (borrowed; must outlive the simulation run).
  /// `on_done` fires when all postings are durably indexed.
  void Publish(const std::vector<const xml::Document*>& docs,
               std::function<void()> on_done);

  /// Withdraws a previously published document: every posting of
  /// (this peer, seq) is deleted from the index, and the document leaves
  /// the local store. Document *modification* is unpublish + republish
  /// (Section 2: "a document modification is interpreted as deletion
  /// followed by insertion"). Returns false if `seq` is unknown.
  [[nodiscard]] bool Unpublish(DocSeq seq);

  struct Stats {
    size_t documents = 0;
    size_t postings = 0;
    size_t batches = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Buffer {
    PostingList postings;
    /// Document types (root labels) contributing to this batch, for the
    /// DPP's type-aware conditions.
    std::set<std::string> types;
  };
  void Flush(const std::string& key, Buffer buffer);
  /// Consumes one outstanding ack; on the last one runs `on_complete`
  /// (settled-index hook) and then the caller's `on_done`.
  void AckOne();

  dht::DhtPeer* peer_;
  DocStore* doc_store_;
  PublishOptions options_;
  Stats stats_;
  size_t outstanding_acks_ = 0;
  std::function<void()> on_done_;
};

}  // namespace kadop::index

#endif  // KADOP_INDEX_PUBLISHER_H_
