#ifndef KADOP_INDEX_DOC_STORE_H_
#define KADOP_INDEX_DOC_STORE_H_

#include <vector>

#include "index/posting.h"
#include "xml/node.h"

namespace kadop::index {

/// A peer's local document repository. XML documents are stored at their
/// publishing peer (only the index lives in the DHT); the second query
/// phase evaluates tree patterns against these local trees.
class DocStore {
 public:
  DocStore() = default;

  DocStore(const DocStore&) = delete;
  DocStore& operator=(const DocStore&) = delete;

  /// Registers a document (not owned) and returns its local sequence id.
  [[nodiscard]] DocSeq Register(const xml::Document* doc) {
    docs_.push_back(doc);
    return static_cast<DocSeq>(docs_.size() - 1);
  }

  /// Returns the document with the given sequence id, or nullptr (never
  /// registered, or unregistered since).
  [[nodiscard]] const xml::Document* Get(DocSeq seq) const {
    return seq < docs_.size() ? docs_[seq] : nullptr;
  }

  /// Drops a document (sequence ids are never reused). Returns the
  /// document pointer, or nullptr if the id was unknown.
  [[nodiscard]] const xml::Document* Unregister(DocSeq seq) {
    if (seq >= docs_.size()) return nullptr;
    const xml::Document* doc = docs_[seq];
    docs_[seq] = nullptr;
    return doc;
  }

  [[nodiscard]] size_t size() const { return docs_.size(); }

 private:
  std::vector<const xml::Document*> docs_;
};

}  // namespace kadop::index

#endif  // KADOP_INDEX_DOC_STORE_H_
