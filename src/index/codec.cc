#include "index/codec.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profile_clock.h"

namespace kadop::index::codec {

namespace {

/// Codec-wide counters. `encode_ns`/`decode_ns` are wall-clock and only
/// move when obs::SetWallClockProfiling(true) has opted this process into
/// nondeterministic timing (micro benches do; nothing under src/ does).
/// In deterministic runs ProfileNowNs() is 0, the deltas are 0, and
/// same-seed metric snapshots stay byte-identical.
struct CodecCounters {
  obs::Counter* raw_bytes;
  obs::Counter* encoded_bytes;
  obs::Counter* encodes;
  obs::Counter* decodes;
  obs::Counter* encode_ns;
  obs::Counter* decode_ns;
};

CodecCounters& C() {
  static CodecCounters c = [] {
    auto& r = obs::MetricRegistry::Default();
    return CodecCounters{
        r.GetCounter("codec.raw_bytes"),    r.GetCounter("codec.encoded_bytes"),
        r.GetCounter("codec.encodes"),      r.GetCounter("codec.decodes"),
        r.GetCounter("codec.encode_ns"),    r.GetCounter("codec.decode_ns"),
    };
  }();
  return c;
}

bool g_compression_enabled = false;
bool g_block_headers_enabled = false;

/// Leading magic byte of the block-header framing. `EncodePostings`
/// streams start with varint(count), so a headered block is recognizably
/// different from a bare stream only by convention — both ends of an
/// exchange agree on the framing via `SetBlockHeadersEnabled`; the magic
/// byte is a corruption tripwire, not a negotiation.
constexpr uint8_t kBlockHeaderMagic = 0xB7;

void AppendVarint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

[[nodiscard]] bool ReadVarint(const uint8_t* data, size_t size, size_t* pos,
                              uint64_t* v) {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= size) return false;
    const uint8_t byte = data[(*pos)++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = value;
      return true;
    }
  }
  return false;  // > 10 bytes: malformed
}

/// Pointer-based varint reader for the batch decode path: one bounds
/// check up front for the common single-byte case, per-byte checks only
/// on the multi-byte tail. Rejects exactly what `ReadVarint` rejects.
[[nodiscard]] inline bool ReadVarintPtr(const uint8_t*& p, const uint8_t* end,
                                        uint64_t* v) {
  if (p < end && *p < 0x80) {  // single-byte fast case (most deltas)
    *v = *p++;
    return true;
  }
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (p >= end) return false;
    const uint8_t byte = *p++;
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = value;
      return true;
    }
  }
  return false;  // > 10 bytes: malformed
}

void AppendVarintPosting(std::vector<uint8_t>& out, const Posting& p) {
  AppendVarint(out, p.peer);
  AppendVarint(out, p.doc);
  AppendVarint(out, p.sid.start);
  AppendVarint(out, p.sid.end - p.sid.start);
  AppendVarint(out, p.sid.level);
}

[[nodiscard]] size_t VarintPostingLen(const Posting& p) {
  return VarintLen(p.peer) + VarintLen(p.doc) + VarintLen(p.sid.start) +
         VarintLen(p.sid.end - p.sid.start) + VarintLen(p.sid.level);
}

[[nodiscard]] bool ReadVarintPosting(const uint8_t* data, size_t size,
                                     size_t* pos, Posting* p) {
  uint64_t peer = 0, doc = 0, start = 0, width = 0, level = 0;
  if (!ReadVarint(data, size, pos, &peer) ||
      !ReadVarint(data, size, pos, &doc) ||
      !ReadVarint(data, size, pos, &start) ||
      !ReadVarint(data, size, pos, &width) ||
      !ReadVarint(data, size, pos, &level)) {
    return false;
  }
  if (peer > std::numeric_limits<uint32_t>::max() ||
      doc > std::numeric_limits<uint32_t>::max() ||
      start + width > std::numeric_limits<uint32_t>::max() ||
      level > std::numeric_limits<uint16_t>::max()) {
    return false;
  }
  p->peer = static_cast<uint32_t>(peer);
  p->doc = static_cast<uint32_t>(doc);
  p->sid.start = static_cast<uint32_t>(start);
  p->sid.end = static_cast<uint32_t>(start + width);
  p->sid.level = static_cast<uint16_t>(level);
  return true;
}

/// Shared traversal for the encoder and the size function: walks the runs
/// of `list` and feeds each varint (or its length) to `emit`, so
/// `EncodedBytes` is exact by construction.
template <typename Emit>
void WalkEncoded(const PostingList& list, Emit&& emit) {
  emit(list.size());
  uint32_t prev_peer = 0;
  uint32_t prev_doc = 0;
  size_t i = 0;
  while (i < list.size()) {
    const uint32_t peer = list[i].peer;
    const uint32_t doc = list[i].doc;
    size_t end = i;
    while (end < list.size() && list[end].peer == peer &&
           list[end].doc == doc) {
      ++end;
    }
    emit(peer - prev_peer);
    emit(peer != prev_peer ? doc : doc - prev_doc);
    emit(static_cast<uint64_t>(end - i));
    uint32_t prev_start = 0;
    for (; i < end; ++i) {
      const xml::StructuralId& sid = list[i].sid;
      KADOP_CHECK(sid.end >= sid.start, "codec: sid interval end < start");
      emit(sid.start - prev_start);
      emit(sid.end - sid.start);
      emit(sid.level);
      prev_start = sid.start;
    }
    prev_peer = peer;
    prev_doc = doc;
  }
}

}  // namespace

void SetCompressionEnabled(bool on) { g_compression_enabled = on; }

bool CompressionEnabled() { return g_compression_enabled; }

size_t VarintLen(uint64_t v) {
  size_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

std::vector<uint8_t> EncodePostings(const PostingList& list) {
  KADOP_CHECK(IsSortedPostingList(list), "codec: encoding an unsorted list");
  const uint64_t t0 = obs::ProfileNowNs();
  std::vector<uint8_t> out;
  out.reserve(list.size() * 6 + 4);
  WalkEncoded(list, [&out](uint64_t v) { AppendVarint(out, v); });
  C().encodes->Increment();
  C().encode_ns->Increment(obs::ProfileNowNs() - t0);
  return out;
}

Status DecodePostings(const uint8_t* data, size_t size, PostingList* out) {
  const uint64_t t0 = obs::ProfileNowNs();
  out->clear();
  size_t pos = 0;
  uint64_t count = 0;
  if (!ReadVarint(data, size, &pos, &count)) {
    return Status::Corruption("codec: truncated posting count");
  }
  // Every posting needs >= 3 payload bytes; reject counts the buffer can't
  // possibly hold before reserving.
  if (count > (size - pos) / 3 + 1) {
    return Status::Corruption("codec: posting count exceeds buffer");
  }
  out->reserve(count);
  uint32_t prev_peer = 0;
  uint32_t prev_doc = 0;
  while (out->size() < count) {
    uint64_t dpeer = 0;
    uint64_t doc_field = 0;
    uint64_t run_len = 0;
    if (!ReadVarint(data, size, &pos, &dpeer) ||
        !ReadVarint(data, size, &pos, &doc_field) ||
        !ReadVarint(data, size, &pos, &run_len)) {
      return Status::Corruption("codec: truncated run header");
    }
    const uint64_t peer = prev_peer + dpeer;
    const uint64_t doc = dpeer != 0 ? doc_field : prev_doc + doc_field;
    if (run_len == 0 || run_len > count - out->size() ||
        peer > std::numeric_limits<uint32_t>::max() ||
        doc > std::numeric_limits<uint32_t>::max()) {
      return Status::Corruption("codec: malformed run header");
    }
    uint64_t prev_start = 0;
    for (uint64_t k = 0; k < run_len; ++k) {
      uint64_t dstart = 0;
      uint64_t width = 0;
      uint64_t level = 0;
      if (!ReadVarint(data, size, &pos, &dstart) ||
          !ReadVarint(data, size, &pos, &width) ||
          !ReadVarint(data, size, &pos, &level)) {
        return Status::Corruption("codec: truncated posting");
      }
      const uint64_t start = prev_start + dstart;
      const uint64_t sid_end = start + width;
      if (sid_end > std::numeric_limits<uint32_t>::max() ||
          level > std::numeric_limits<uint16_t>::max()) {
        return Status::Corruption("codec: posting field overflow");
      }
      Posting p;
      p.peer = static_cast<uint32_t>(peer);
      p.doc = static_cast<uint32_t>(doc);
      p.sid.start = static_cast<uint32_t>(start);
      p.sid.end = static_cast<uint32_t>(sid_end);
      p.sid.level = static_cast<uint16_t>(level);
      out->push_back(p);
      prev_start = static_cast<uint32_t>(start);
    }
    prev_peer = static_cast<uint32_t>(peer);
    prev_doc = static_cast<uint32_t>(doc);
  }
  if (pos != size) {
    return Status::Corruption("codec: trailing bytes after postings");
  }
  C().decodes->Increment();
  C().decode_ns->Increment(obs::ProfileNowNs() - t0);
  return Status::OK();
}

Status DecodePostings(const std::vector<uint8_t>& buffer, PostingList* out) {
  return DecodePostings(buffer.data(), buffer.size(), out);
}

Status DecodePostingsInto(const uint8_t* data, size_t size, Posting* out,
                          size_t capacity, size_t* decoded) {
  const uint64_t t0 = obs::ProfileNowNs();
  *decoded = 0;
  const uint8_t* p = data;
  const uint8_t* const end = data + size;
  uint64_t count = 0;
  if (!ReadVarintPtr(p, end, &count)) {
    return Status::Corruption("codec: truncated posting count");
  }
  if (count > static_cast<uint64_t>(end - p) / 3 + 1) {
    return Status::Corruption("codec: posting count exceeds buffer");
  }
  if (count > capacity) {
    return Status::Corruption("codec: posting count exceeds caller span");
  }
  Posting* w = out;
  Posting* const w_end = out + count;
  uint32_t prev_peer = 0;
  uint32_t prev_doc = 0;
  while (w < w_end) {
    uint64_t dpeer = 0;
    uint64_t doc_field = 0;
    uint64_t run_len = 0;
    if (!ReadVarintPtr(p, end, &dpeer) || !ReadVarintPtr(p, end, &doc_field) ||
        !ReadVarintPtr(p, end, &run_len)) {
      return Status::Corruption("codec: truncated run header");
    }
    const uint64_t peer = prev_peer + dpeer;
    const uint64_t doc = dpeer != 0 ? doc_field : prev_doc + doc_field;
    if (run_len == 0 || run_len > static_cast<uint64_t>(w_end - w) ||
        peer > std::numeric_limits<uint32_t>::max() ||
        doc > std::numeric_limits<uint32_t>::max()) {
      return Status::Corruption("codec: malformed run header");
    }
    uint64_t prev_start = 0;
    for (uint64_t k = 0; k < run_len; ++k) {
      uint64_t dstart = 0;
      uint64_t width = 0;
      uint64_t level = 0;
      if (!ReadVarintPtr(p, end, &dstart) || !ReadVarintPtr(p, end, &width) ||
          !ReadVarintPtr(p, end, &level)) {
        return Status::Corruption("codec: truncated posting");
      }
      const uint64_t start = prev_start + dstart;
      const uint64_t sid_end = start + width;
      if (sid_end > std::numeric_limits<uint32_t>::max() ||
          level > std::numeric_limits<uint16_t>::max()) {
        return Status::Corruption("codec: posting field overflow");
      }
      w->peer = static_cast<uint32_t>(peer);
      w->doc = static_cast<uint32_t>(doc);
      w->sid.start = static_cast<uint32_t>(start);
      w->sid.end = static_cast<uint32_t>(sid_end);
      w->sid.level = static_cast<uint16_t>(level);
      ++w;
      prev_start = start;
    }
    prev_peer = static_cast<uint32_t>(peer);
    prev_doc = static_cast<uint32_t>(doc);
  }
  if (p != end) {
    return Status::Corruption("codec: trailing bytes after postings");
  }
  *decoded = static_cast<size_t>(count);
  C().decodes->Increment();
  C().decode_ns->Increment(obs::ProfileNowNs() - t0);
  return Status::OK();
}

size_t EncodedBytes(const PostingList& list) {
  size_t total = 0;
  WalkEncoded(list, [&total](uint64_t v) { total += VarintLen(v); });
  return total;
}

size_t EncodedSingleBytes(const Posting& posting) {
  KADOP_CHECK(posting.sid.end >= posting.sid.start,
              "codec: sid interval end < start");
  return VarintLen(1)                                    // count
         + VarintLen(posting.peer) + VarintLen(posting.doc) + VarintLen(1)
         + VarintLen(posting.sid.start)
         + VarintLen(posting.sid.end - posting.sid.start)
         + VarintLen(posting.sid.level);
}

size_t WireBytes(const PostingList& list, bool compressed) {
  if (!compressed) return RawBytes(list);
  const size_t encoded = EncodedBytes(list);
  RecordEncode(RawBytes(list), encoded);
  return encoded;
}

size_t MemoizedWireBytes(const PostingList& list, bool compressed,
                         WireSizeMemo* memo) {
  if (memo->count != list.size()) {
    memo->bytes = WireBytes(list, compressed);
    memo->count = list.size();
  }
  return memo->bytes;
}

size_t StoredBytes(const PostingList& list) {
  return g_compression_enabled ? EncodedBytes(list) : RawBytes(list);
}

size_t StoredPostingBytes(const Posting& posting) {
  return g_compression_enabled ? EncodedSingleBytes(posting)
                               : RawBytes(static_cast<size_t>(1));
}

double EstimatedWirePostingBytes(bool compressed) {
  // ~6 bytes/posting is the measured DBLP-mix ratio (BENCH_codec.json);
  // the planner only needs relative strategy costs, not exact sizes.
  constexpr double kEstimatedEncodedPostingBytes = 6.0;
  return compressed ? kEstimatedEncodedPostingBytes
                    : static_cast<double>(Posting::kWireBytes);
}

void RecordEncode(size_t raw_bytes, size_t encoded_bytes) {
  C().raw_bytes->Increment(raw_bytes);
  C().encoded_bytes->Increment(encoded_bytes);
}

void SetBlockHeadersEnabled(bool on) { g_block_headers_enabled = on; }

bool BlockHeadersEnabled() { return g_block_headers_enabled; }

size_t BlockHeaderBytes(const BlockHeader& header) {
  size_t total = 1 + VarintLen(header.count);  // magic + count
  if (header.count > 0) {
    total += VarintPostingLen(header.bounds.lo) +
             VarintPostingLen(header.bounds.hi);
  }
  return total;
}

void AppendBlockHeader(std::vector<uint8_t>& out, const BlockHeader& header) {
  KADOP_CHECK(header.count == 0 || !(header.bounds.hi < header.bounds.lo),
              "codec: block header bounds inverted");
  out.push_back(kBlockHeaderMagic);
  AppendVarint(out, header.count);
  if (header.count > 0) {
    AppendVarintPosting(out, header.bounds.lo);
    AppendVarintPosting(out, header.bounds.hi);
  }
}

Status ParseBlockHeader(const uint8_t* data, size_t size, BlockHeader* header,
                        size_t* payload_offset) {
  *header = BlockHeader{};
  *payload_offset = 0;
  size_t pos = 0;
  if (size == 0 || data[pos++] != kBlockHeaderMagic) {
    return Status::Corruption("codec: bad block header magic");
  }
  uint64_t count = 0;
  if (!ReadVarint(data, size, &pos, &count)) {
    return Status::Corruption("codec: truncated block header count");
  }
  Condition bounds;  // default-empty: matches nothing when count == 0
  if (count > 0) {
    if (!ReadVarintPosting(data, size, &pos, &bounds.lo) ||
        !ReadVarintPosting(data, size, &pos, &bounds.hi)) {
      return Status::Corruption("codec: truncated block header bounds");
    }
    if (bounds.hi < bounds.lo) {
      return Status::Corruption("codec: block header bounds inverted");
    }
  }
  header->bounds = bounds;
  header->count = count;
  *payload_offset = pos;
  return Status::OK();
}

Status DecodeBlockWithHeader(const uint8_t* data, size_t size,
                             BlockHeader* header, PostingList* out) {
  size_t payload = 0;
  if (Status s = ParseBlockHeader(data, size, header, &payload); !s.ok()) {
    return s;
  }
  if (Status s = DecodePostings(data + payload, size - payload, out);
      !s.ok()) {
    return s;
  }
  if (out->size() != header->count ||
      (!out->empty() && (out->front() != header->bounds.lo ||
                         out->back() != header->bounds.hi))) {
    return Status::Corruption("codec: block header disagrees with payload");
  }
  return Status::OK();
}

BlockEncoder::BlockEncoder(size_t max_block_postings)
    : max_block_postings_(max_block_postings == 0 ? 1 : max_block_postings) {}

void BlockEncoder::Add(const Posting& posting) {
  KADOP_CHECK(pending_.empty() || !(posting < pending_.back()),
              "codec: block postings must arrive sorted");
  pending_.push_back(posting);
}

BlockEncoder::Block BlockEncoder::Flush() {
  Block block;
  block.postings = std::move(pending_);
  pending_ = PostingList();
  block.count = block.postings.size();
  if (!block.postings.empty()) {
    block.bounds = Condition{block.postings.front(), block.postings.back()};
  }
  if (g_block_headers_enabled) {
    AppendBlockHeader(block.bytes,
                      BlockHeader{block.bounds, block.count});
  }
  const std::vector<uint8_t> payload = EncodePostings(block.postings);
  block.bytes.insert(block.bytes.end(), payload.begin(), payload.end());
  return block;
}

}  // namespace kadop::index::codec
