#ifndef KADOP_INDEX_CODEC_H_
#define KADOP_INDEX_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "index/condition.h"
#include "index/posting.h"

namespace kadop::index::codec {

/// Group-delta + varint codec for sorted posting lists (docs/wire_format.md).
///
/// Lists are kept in clustered (peer, doc, sid) order, which makes them
/// near-ideal delta-coding input: consecutive postings usually share the
/// (peer, doc) prefix, and sid starts are non-decreasing within a
/// (peer, doc) run. The encoded stream is
///
///   varint(count)
///   run*:  varint(dpeer) varint(ddoc) varint(run_len)
///          posting*: varint(dstart) varint(end - start) varint(level)
///
/// where `dpeer` is the peer delta against the previous run (absolute for
/// the first run), `ddoc` is the doc delta when the peer is unchanged and
/// the absolute doc id otherwise, and `dstart` restarts at the absolute
/// sid start on each new run. Every varint is LEB128 (7 bits per byte).
///
/// Encoding requires `IsSortedPostingList(list)` and `sid.end >= sid.start`
/// for every posting — the invariants every stored list already satisfies.
/// Duplicates encode as zero deltas; the codec never deduplicates.

/// Process-wide A/B switch (shell `codec on|off`, bench knobs). When off —
/// the default — every size function below reports raw 18-byte records, so
/// seeded baselines are unchanged. Query-side transfers can override the
/// switch per query via `QueryOptions::compress`.
void SetCompressionEnabled(bool on);
[[nodiscard]] bool CompressionEnabled();

/// LEB128 length of `v` (1..10 bytes).
[[nodiscard]] size_t VarintLen(uint64_t v);

/// Serializes `list` (sorted; see above). The buffer round-trips through
/// `DecodePostings` and its size always equals `EncodedBytes(list)`.
[[nodiscard]] std::vector<uint8_t> EncodePostings(const PostingList& list);

/// Inverse of `EncodePostings`. Fails with `kCorruption` on truncated or
/// malformed input instead of crashing; `out` is cleared first and holds
/// the full decoded list only on OK.
[[nodiscard]] Status DecodePostings(const uint8_t* data, size_t size,
                                    PostingList* out);
[[nodiscard]] Status DecodePostings(const std::vector<uint8_t>& buffer,
                                    PostingList* out);

/// Batch fast path: decodes a whole stream into the caller-preallocated
/// span `out[0..capacity)` without touching the heap — the query engine
/// points it at arena scratch. Validates exactly what `DecodePostings`
/// validates (truncation, malformed varints, run/field overflow, trailing
/// bytes) and additionally fails with `kCorruption` when the stream holds
/// more than `capacity` postings. On OK `*decoded` is the posting count.
[[nodiscard]] Status DecodePostingsInto(const uint8_t* data, size_t size,
                                        Posting* out, size_t capacity,
                                        size_t* decoded);

/// Exact size of `EncodePostings(list)` without materializing the buffer —
/// the size model used for every network/store cost charge, so the
/// simulator never allocates encode buffers on hot paths.
[[nodiscard]] size_t EncodedBytes(const PostingList& list);

/// Encoded size of a single posting as a standalone one-element stream —
/// the amortized append charge (appends re-encode only the appended run,
/// never the whole stored list).
[[nodiscard]] size_t EncodedSingleBytes(const Posting& posting);

/// Raw (fixed 18-byte record) sizes. The only sanctioned home for
/// `* Posting::kWireBytes` arithmetic outside this library is
/// `PostingListBytes` itself (lint rule KDP010).
[[nodiscard]] constexpr size_t RawBytes(size_t count) {
  return count * Posting::kWireBytes;
}
[[nodiscard]] inline size_t RawBytes(const PostingList& list) {
  return RawBytes(list.size());
}

/// Wire size of a posting payload: encoded when `compressed`, raw records
/// otherwise. Records the achieved ratio in `codec.{raw,encoded}_bytes`.
[[nodiscard]] size_t WireBytes(const PostingList& list, bool compressed);

/// `WireBytes` with a caller-owned memo so a payload's size is computed
/// (and its compression ratio counted) once per list length even though
/// the network model calls `SizeBytes()` on every hop. The memo
/// revalidates against the list length, so a payload built incrementally
/// (postings appended between sizings) is re-sized instead of served
/// stale; in-place edits that keep the length are not detected — payload
/// postings must only be appended, never rewritten.
struct WireSizeMemo {
  size_t count = std::numeric_limits<size_t>::max();
  size_t bytes = 0;
};
[[nodiscard]] size_t MemoizedWireBytes(const PostingList& list,
                                       bool compressed, WireSizeMemo* memo);

/// Stored size of posting data in a peer store, honoring the process-wide
/// switch: B+-tree leaves hold delta blocks when compression is on.
[[nodiscard]] size_t StoredBytes(const PostingList& list);
[[nodiscard]] size_t StoredPostingBytes(const Posting& posting);

/// Per-posting byte estimate for the query planner's transfer-cost model:
/// `Posting::kWireBytes` raw, or a fixed documented estimate when the
/// transfer will be delta-coded (docs/wire_format.md#planner).
[[nodiscard]] double EstimatedWirePostingBytes(bool compressed);

/// Record an achieved raw -> encoded ratio in the codec counters (used by
/// sites that model an encode without materializing it).
void RecordEncode(size_t raw_bytes, size_t encoded_bytes);

/// Process-wide switch for the self-describing block-header framing below.
/// Off by default so every seeded baseline stays byte-identical; holders
/// and query peers that want pre-decode block skipping turn it on for both
/// ends of the exchange (the header is not self-negotiating).
void SetBlockHeadersEnabled(bool on);
[[nodiscard]] bool BlockHeadersEnabled();

/// Self-describing block header: the exact first/last posting of the block
/// (so `bounds` carries `[min_doc, max_doc]` *and* the min/max start
/// interval) plus the posting count. A reader can decide from the header
/// alone whether a block can intersect its query range — and skip the
/// payload without ever decoding it.
struct BlockHeader {
  Condition bounds;  // lo == first posting, hi == last posting (exact)
  uint64_t count = 0;
};

/// Encoded size of `header` (magic byte + varints).
[[nodiscard]] size_t BlockHeaderBytes(const BlockHeader& header);

/// Appends the header framing to `out`.
void AppendBlockHeader(std::vector<uint8_t>& out, const BlockHeader& header);

/// Parses a header off the front of a framed block. On OK, `*payload_offset`
/// is the offset of the embedded `EncodePostings` stream. Fails with
/// `kCorruption` on a bad magic byte, truncation, or inverted bounds.
[[nodiscard]] Status ParseBlockHeader(const uint8_t* data, size_t size,
                                      BlockHeader* header,
                                      size_t* payload_offset);

/// Parses the header, decodes the payload, and cross-checks them: the
/// payload's posting count and exact first/last posting must match the
/// header, so a tampered header (or a header spliced onto the wrong
/// payload) fails with `kCorruption` instead of mis-skipping.
[[nodiscard]] Status DecodeBlockWithHeader(const uint8_t* data, size_t size,
                                           BlockHeader* header,
                                           PostingList* out);

/// Splits a posting stream into posting-aligned, independently decodable
/// blocks: every `Flush()` emits a standalone `EncodePostings` stream of at
/// most `max_block_postings` postings, so pipelined-get and DPP block
/// boundaries never straddle a posting and each block decodes on its own.
/// When `BlockHeadersEnabled()`, `bytes` is prefixed with the block's
/// `BlockHeader`; `bounds`/`count` are filled either way.
class BlockEncoder {
 public:
  struct Block {
    PostingList postings;
    std::vector<uint8_t> bytes;  // [header +] EncodePostings(postings)
    Condition bounds;            // exact first/last posting (empty if none)
    uint64_t count = 0;
  };

  explicit BlockEncoder(size_t max_block_postings);

  /// Appends one posting to the current block. Input must arrive in sorted
  /// order, exactly as `EncodePostings` requires.
  void Add(const Posting& posting);

  [[nodiscard]] bool BlockFull() const {
    return pending_.size() >= max_block_postings_;
  }
  [[nodiscard]] size_t pending() const { return pending_.size(); }

  /// Encodes and returns the current block, then starts a fresh one.
  [[nodiscard]] Block Flush();

 private:
  size_t max_block_postings_;
  PostingList pending_;
};

}  // namespace kadop::index::codec

#endif  // KADOP_INDEX_CODEC_H_
