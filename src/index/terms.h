#ifndef KADOP_INDEX_TERMS_H_
#define KADOP_INDEX_TERMS_H_

#include <string>
#include <string_view>
#include <vector>

#include "index/posting.h"
#include "xml/node.h"

namespace kadop::index {

/// One tuple of the Term relation ready for indexing: a DHT key plus the
/// posting it carries.
struct TermPosting {
  std::string key;
  Posting posting;
};

/// DHT key for an element label. KadoP indexing distinguishes labels from
/// words, so the two live under disjoint key prefixes.
[[nodiscard]] std::string LabelKey(std::string_view label);
/// DHT key for a word occurring in text content.
[[nodiscard]] std::string WordKey(std::string_view word);

/// Splits text into lowercase alphanumeric tokens.
void TokenizeWords(std::string_view text, std::vector<std::string>& out);

/// Options controlling document-to-postings extraction.
struct ExtractOptions {
  /// Words shorter than this are dropped (cheap stop-word proxy).
  size_t min_word_length = 2;
  /// If false, text content is not indexed (labels only).
  bool index_words = true;
};

/// Builds the Term relation for one document in a single traversal
/// (Section 2): one posting per element label, and one posting per distinct
/// word per enclosing element (the word posting carries the parent
/// element's sid). Entity-reference nodes are skipped — the Fundex layer
/// handles intensional content.
void ExtractTerms(const xml::Document& doc, PeerId peer, DocSeq doc_seq,
                  const ExtractOptions& options,
                  std::vector<TermPosting>& out);

}  // namespace kadop::index

#endif  // KADOP_INDEX_TERMS_H_
