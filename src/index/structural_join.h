#ifndef KADOP_INDEX_STRUCTURAL_JOIN_H_
#define KADOP_INDEX_STRUCTURAL_JOIN_H_

#include "index/posting.h"

namespace kadop::index {

/// Exact structural semi-joins over sorted posting lists (merge + stack,
/// O(|la| + |lb|)). Both inputs must be in the canonical
/// (peer, doc, sid) order; outputs preserve it.

/// a[//b]: the postings of `la` that have at least one descendant in `lb`
/// within the same document.
[[nodiscard]] PostingList AncestorSemiJoin(const PostingList& la, const PostingList& lb);

/// b[\\a]: the postings of `lb` that have at least one ancestor in `la`
/// within the same document.
[[nodiscard]] PostingList DescendantSemiJoin(const PostingList& la, const PostingList& lb);

/// Parent/child variants (level distance exactly one).
[[nodiscard]] PostingList ParentSemiJoin(const PostingList& la, const PostingList& lb);
[[nodiscard]] PostingList ChildSemiJoin(const PostingList& la, const PostingList& lb);

}  // namespace kadop::index

#endif  // KADOP_INDEX_STRUCTURAL_JOIN_H_
