#ifndef KADOP_INDEX_DPP_MESSAGES_H_
#define KADOP_INDEX_DPP_MESSAGES_H_

#include <set>
#include <string>
#include <vector>

#include "dht/peer.h"
#include "index/codec.h"
#include "index/condition.h"
#include "index/posting.h"
#include "sim/message.h"

namespace kadop::index {

/// Append a sub-batch into an (overflow) DPP block; routed to the block's
/// pseudo-key, i.e. the peer holding the block.
struct DppAppendToBlock final : sim::Payload {
  std::string block_key;
  PostingList postings;
  /// Captured from the process-wide codec switch at construction time.
  bool compressed = codec::CompressionEnabled();

  size_t SizeBytes() const override {
    return block_key.size() +
           codec::MemoizedWireBytes(postings, compressed, &wire_bytes_memo_) +
           8;
  }
  std::string_view TypeName() const override { return "DppAppendToBlock"; }

 private:
  mutable codec::WireSizeMemo wire_bytes_memo_;
};

/// Ack for DppAppendToBlock, carrying the block's new size.
struct DppAppendDone final : sim::Payload {
  uint64_t new_count = 0;

  size_t SizeBytes() const override { return 8; }
  std::string_view TypeName() const override { return "DppAppendDone"; }
};

/// Stores a freshly migrated block at the new holder (routed to the new
/// pseudo-key).
struct DppStoreBlock final : sim::Payload {
  std::string block_key;
  PostingList postings;
  /// Captured from the process-wide codec switch at construction time.
  bool compressed = codec::CompressionEnabled();

  size_t SizeBytes() const override {
    return block_key.size() +
           codec::MemoizedWireBytes(postings, compressed, &wire_bytes_memo_) +
           8;
  }
  std::string_view TypeName() const override { return "DppStoreBlock"; }

 private:
  mutable codec::WireSizeMemo wire_bytes_memo_;
};

struct DppStoreBlockDone final : sim::Payload {
  uint64_t count = 0;

  size_t SizeBytes() const override { return 8; }
  std::string_view TypeName() const override { return "DppStoreBlockDone"; }
};

/// Asks the holder of `block_key` to split the block: keep the lower half,
/// migrate the upper half to `new_block_key` (routed by the DHT). With
/// `random_split` (the ablation of Section 4.1), postings are dealt
/// alternately instead of by the median, so both halves keep the full
/// range.
struct DppSplitBlock final : sim::Payload {
  std::string block_key;
  std::string new_block_key;
  bool random_split = false;

  size_t SizeBytes() const override {
    return block_key.size() + new_block_key.size() + 4;
  }
  std::string_view TypeName() const override { return "DppSplitBlock"; }
};

/// Split outcome reported back to the term owner so it can update the root
/// block's conditions.
struct DppSplitDone final : sim::Payload {
  bool ok = false;
  Condition lower;
  Condition upper;
  uint64_t lower_count = 0;
  uint64_t upper_count = 0;

  size_t SizeBytes() const override {
    // Two conditions = four raw posting bounds (fixed-format fields).
    return codec::RawBytes(4) + 20;
  }
  std::string_view TypeName() const override { return "DppSplitDone"; }
};

/// Deletes postings from a DPP block at its holder (routed by block key).
struct DppDeleteFromBlock final : sim::Payload {
  std::string block_key;
  bool whole_doc = false;
  Posting posting;
  DocId doc;

  size_t SizeBytes() const override {
    return block_key.size() + Posting::kWireBytes + 12;
  }
  std::string_view TypeName() const override { return "DppDeleteFromBlock"; }
};

struct DppDeleteDone final : sim::Payload {
  uint64_t removed = 0;

  size_t SizeBytes() const override { return 8; }
  std::string_view TypeName() const override { return "DppDeleteDone"; }
};

/// One root-block entry: a condition plus the pseudo-key leading to the
/// block that satisfies it. `types` is the set of document types (root
/// labels) with postings in the block; queries skip blocks whose types
/// cannot match (empty set = unknown, never skipped).
struct DppBlockInfo {
  std::string key;
  Condition cond;
  uint64_t count = 0;
  std::set<std::string> types;

  size_t WireBytes() const {
    // The condition's raw posting bounds are fixed-format fields.
    size_t total = key.size() + codec::RawBytes(2) + 8;
    for (const auto& t : types) total += t.size() + 1;
    return total;
  }
};

/// Fetches a term's DPP root block (conditions + pseudo-keys). For a term
/// that was never partitioned, the reply contains one entry whose key is
/// the term key itself.
struct DppDirRequest final : sim::Payload {
  std::string term_key;

  size_t SizeBytes() const override { return term_key.size() + 4; }
  std::string_view TypeName() const override { return "DppDirRequest"; }
};

struct DppDirResponse final : sim::Payload {
  std::vector<DppBlockInfo> blocks;

  size_t SizeBytes() const override {
    size_t total = 8;
    for (const auto& b : blocks) total += b.WireBytes();
    return total;
  }
  std::string_view TypeName() const override { return "DppDirResponse"; }
};

/// One pattern node of a distributed block-join task: only the structural
/// skeleton (parent index and edge axis) crosses the wire — the holder
/// joins postings, not labels. Axis codes mirror query::Axis.
struct BlockJoinPatternNode {
  int32_t parent = -1;
  uint8_t axis = 1;  // 0 = child ('/'), 1 = descendant ('//')
};

/// Asks the peer holding `inputs[home_node][home_block]` (the task's
/// largest input — routed to that block's pseudo-key, so the heaviest
/// list never moves) to execute one block-join task of Section 4.3: pull
/// the other input blocks trimmed to `window`, run the holistic twig join
/// locally, and reply with a JoinResultMessage carrying only result
/// tuples (docs/distributed_join.md).
struct BlockJoinRequest final : sim::Payload {
  uint64_t query_id = 0;
  uint32_t task = 0;
  std::vector<BlockJoinPatternNode> nodes;
  /// Per pattern node, the surviving directory blocks whose conditions
  /// intersect the task window.
  std::vector<std::vector<DppBlockInfo>> inputs;
  /// The task's document interval (a closed posting range).
  Condition window;
  size_t home_node = 0;
  size_t home_block = 0;
  /// Fetch policy and codec choice for the holder's pulls, inherited from
  /// the originating query.
  dht::RetryPolicy fetch_retry;
  bool compress = false;

  size_t SizeBytes() const override {
    // Header + retry policy + the window's two raw posting bounds.
    size_t total = 40 + nodes.size() * 5 + codec::RawBytes(2);
    for (const auto& per_node : inputs) {
      total += 8;
      for (const auto& b : per_node) total += b.WireBytes();
    }
    return total;
  }
  std::string_view TypeName() const override { return "BlockJoinRequest"; }
};

/// The holder's reply: per-document answer tuples, never raw postings.
/// Answers are flattened — answer i is (answer_docs[i], answer_sids
/// [i*n, (i+1)*n)) with n = nodes_per_answer — and wire-costed through
/// the codec size model: each (doc, sid) element tuple is exactly one raw
/// posting record.
struct JoinResultMessage final : sim::Payload {
  uint64_t query_id = 0;
  uint32_t task = 0;
  uint32_t nodes_per_answer = 0;
  std::vector<DocId> matched_docs;
  std::vector<DocId> answer_docs;
  std::vector<xml::StructuralId> answer_sids;
  bool complete = true;
  bool degraded = false;
  /// Holder-side accounting, folded into the query's metrics: postings
  /// pulled into the task join, the wire bytes of the non-local pulls
  /// (the home block is read locally and ships nothing), and the number
  /// of input blocks fetched.
  uint64_t postings_pulled = 0;
  uint64_t pulled_wire_bytes = 0;
  uint64_t blocks_fetched = 0;

  size_t SizeBytes() const override {
    return 48 + matched_docs.size() * 8 + answer_docs.size() * 8 +
           codec::RawBytes(answer_sids.size());
  }
  std::string_view TypeName() const override { return "JoinResultMessage"; }
};

}  // namespace kadop::index

#endif  // KADOP_INDEX_DPP_MESSAGES_H_
