#ifndef KADOP_INDEX_DPP_MESSAGES_H_
#define KADOP_INDEX_DPP_MESSAGES_H_

#include <set>
#include <string>
#include <vector>

#include "index/codec.h"
#include "index/condition.h"
#include "index/posting.h"
#include "sim/message.h"

namespace kadop::index {

/// Append a sub-batch into an (overflow) DPP block; routed to the block's
/// pseudo-key, i.e. the peer holding the block.
struct DppAppendToBlock final : sim::Payload {
  std::string block_key;
  PostingList postings;
  /// Captured from the process-wide codec switch at construction time.
  bool compressed = codec::CompressionEnabled();

  size_t SizeBytes() const override {
    return block_key.size() +
           codec::MemoizedWireBytes(postings, compressed, &wire_bytes_memo_) +
           8;
  }
  std::string_view TypeName() const override { return "DppAppendToBlock"; }

 private:
  mutable codec::WireSizeMemo wire_bytes_memo_;
};

/// Ack for DppAppendToBlock, carrying the block's new size.
struct DppAppendDone final : sim::Payload {
  uint64_t new_count = 0;

  size_t SizeBytes() const override { return 8; }
  std::string_view TypeName() const override { return "DppAppendDone"; }
};

/// Stores a freshly migrated block at the new holder (routed to the new
/// pseudo-key).
struct DppStoreBlock final : sim::Payload {
  std::string block_key;
  PostingList postings;
  /// Captured from the process-wide codec switch at construction time.
  bool compressed = codec::CompressionEnabled();

  size_t SizeBytes() const override {
    return block_key.size() +
           codec::MemoizedWireBytes(postings, compressed, &wire_bytes_memo_) +
           8;
  }
  std::string_view TypeName() const override { return "DppStoreBlock"; }

 private:
  mutable codec::WireSizeMemo wire_bytes_memo_;
};

struct DppStoreBlockDone final : sim::Payload {
  uint64_t count = 0;

  size_t SizeBytes() const override { return 8; }
  std::string_view TypeName() const override { return "DppStoreBlockDone"; }
};

/// Asks the holder of `block_key` to split the block: keep the lower half,
/// migrate the upper half to `new_block_key` (routed by the DHT). With
/// `random_split` (the ablation of Section 4.1), postings are dealt
/// alternately instead of by the median, so both halves keep the full
/// range.
struct DppSplitBlock final : sim::Payload {
  std::string block_key;
  std::string new_block_key;
  bool random_split = false;

  size_t SizeBytes() const override {
    return block_key.size() + new_block_key.size() + 4;
  }
  std::string_view TypeName() const override { return "DppSplitBlock"; }
};

/// Split outcome reported back to the term owner so it can update the root
/// block's conditions.
struct DppSplitDone final : sim::Payload {
  bool ok = false;
  Condition lower;
  Condition upper;
  uint64_t lower_count = 0;
  uint64_t upper_count = 0;

  size_t SizeBytes() const override {
    // Two conditions = four raw posting bounds (fixed-format fields).
    return codec::RawBytes(4) + 20;
  }
  std::string_view TypeName() const override { return "DppSplitDone"; }
};

/// Deletes postings from a DPP block at its holder (routed by block key).
struct DppDeleteFromBlock final : sim::Payload {
  std::string block_key;
  bool whole_doc = false;
  Posting posting;
  DocId doc;

  size_t SizeBytes() const override {
    return block_key.size() + Posting::kWireBytes + 12;
  }
  std::string_view TypeName() const override { return "DppDeleteFromBlock"; }
};

struct DppDeleteDone final : sim::Payload {
  uint64_t removed = 0;

  size_t SizeBytes() const override { return 8; }
  std::string_view TypeName() const override { return "DppDeleteDone"; }
};

/// One root-block entry: a condition plus the pseudo-key leading to the
/// block that satisfies it. `types` is the set of document types (root
/// labels) with postings in the block; queries skip blocks whose types
/// cannot match (empty set = unknown, never skipped).
struct DppBlockInfo {
  std::string key;
  Condition cond;
  uint64_t count = 0;
  std::set<std::string> types;

  size_t WireBytes() const {
    // The condition's raw posting bounds are fixed-format fields.
    size_t total = key.size() + codec::RawBytes(2) + 8;
    for (const auto& t : types) total += t.size() + 1;
    return total;
  }
};

/// Fetches a term's DPP root block (conditions + pseudo-keys). For a term
/// that was never partitioned, the reply contains one entry whose key is
/// the term key itself.
struct DppDirRequest final : sim::Payload {
  std::string term_key;

  size_t SizeBytes() const override { return term_key.size() + 4; }
  std::string_view TypeName() const override { return "DppDirRequest"; }
};

struct DppDirResponse final : sim::Payload {
  std::vector<DppBlockInfo> blocks;

  size_t SizeBytes() const override {
    size_t total = 8;
    for (const auto& b : blocks) total += b.WireBytes();
    return total;
  }
  std::string_view TypeName() const override { return "DppDirResponse"; }
};

}  // namespace kadop::index

#endif  // KADOP_INDEX_DPP_MESSAGES_H_
