#ifndef KADOP_INDEX_DPP_H_
#define KADOP_INDEX_DPP_H_

#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "dht/peer.h"
#include "index/dpp_messages.h"

namespace kadop::index {

struct DppOptions {
  /// Maximum postings per data block; a block that grows past this is
  /// split and one half migrates to the peer in charge of the new
  /// pseudo-key `ovf:<i>:<term>`. (The paper bounds data blocks at 4 MB;
  /// 16 Ki postings ~ 300 KB matches our scaled-down volumes.)
  size_t max_block_postings = 16384;
  /// Ordered (range) splits per the paper, or the random-distribution
  /// alternative it evaluates and rejects in Section 4.1.
  bool ordered_splits = true;
};

struct DppStats {
  uint64_t splits = 0;
  uint64_t migrated_postings = 0;
  uint64_t blocks_stored = 0;
  uint64_t dir_requests = 0;

  void Add(const DppStats& other) {
    splits += other.splits;
    migrated_postings += other.migrated_postings;
    blocks_stored += other.blocks_stored;
    dir_requests += other.dir_requests;
  }
};

/// The Distributed Posting Partitioning manager of one peer (Section 4).
///
/// Two roles, both on the same object:
///  - *owner role*: for terms whose key this peer is responsible for, it
///    maintains the root block (ordered conditions + pseudo-keys), routes
///    incoming postings to the right data block, and triggers splits;
///  - *holder role*: it stores overflow blocks that other owners migrated
///    here, and serves split requests against them.
///
/// The root block is the in-memory `TermState`; data blocks live in the
/// ordinary peer stores under their pseudo-keys, so query-time block
/// fetches are plain (pipelined) DHT gets running in parallel against
/// distinct peers.
class DppManager {
 public:
  DppManager(dht::DhtPeer* peer, DppOptions options);

  DppManager(const DppManager&) = delete;
  DppManager& operator=(const DppManager&) = delete;

  /// Append interceptor (install via DhtPeer::SetAppendInterceptor, or let
  /// the core facade do it). Always takes ownership of the request.
  [[nodiscard]] bool OnAppend(const dht::AppendRequest& request);

  /// Get interceptor: serves reads of terms whose list was partitioned by
  /// gathering the blocks (in condition order) from their holders and
  /// streaming them to the requester. Plain DHT gets therefore stay
  /// complete on a DPP index; parallel-fetch clients bypass this by
  /// reading blocks directly. Returns false for unpartitioned keys.
  [[nodiscard]] bool OnGet(const dht::GetRequest& request);

  /// Delete interceptor: routes deletes to the overflow-block holders and
  /// keeps root-block counts in sync. Returns false for keys this peer
  /// holds no root block for.
  [[nodiscard]] bool OnDelete(const dht::DeleteRequest& request);

  /// Total postings of a term owned here (sum over its DPP blocks), or
  /// nullopt if this peer does not own the term.
  [[nodiscard]] std::optional<uint64_t> OwnedTermCount(const std::string& term_key) const;

  /// Serializable snapshot of one term's root block (for key-range
  /// handoff when a peer joins).
  struct TermExport {
    std::string term_key;
    std::vector<DppBlockInfo> blocks;
    uint32_t next_block_seq = 1;

    size_t WireBytes() const {
      size_t total = term_key.size() + 8;
      for (const auto& b : blocks) total += b.key.size() + 44;
      return total;
    }
  };

  /// Removes and returns the root block of `term_key`, or nullopt if this
  /// peer does not own one. Must not be called mid-split.
  [[nodiscard]] std::optional<TermExport> ExportTerm(const std::string& term_key);

  /// Non-destructive copy of the root block of `term_key`, or nullopt if
  /// this peer does not own one or a split is mid-flight (callers retry
  /// later). Used by hot-data replication to stage directory state on a
  /// replica without disturbing the owner.
  [[nodiscard]] std::optional<TermExport> PeekTerm(
      const std::string& term_key) const;

  /// True while a split of `term_key` is mid-flight (PeekTerm would
  /// observe a half-migrated directory).
  [[nodiscard]] bool SplitInProgress(const std::string& term_key) const;

  /// Installs a root block handed off from the previous owner.
  void ImportTerm(const TermExport& exported);

  /// Handles DPP application messages. Returns false if the payload is not
  /// a DPP message (the caller tries other components).
  [[nodiscard]] bool HandleApp(const dht::AppRequest& request, sim::NodeIndex from);

  /// Query-side helper: fetches the root block of `term_key` from its
  /// owner. The callback receives OK and the block list (empty when the
  /// term has no postings); with a retry policy, an owner that never
  /// answers within the budget yields kDeadlineExceeded and an empty list
  /// instead of hanging.
  static void FetchDirectory(
      dht::DhtPeer* requester, const std::string& term_key,
      std::function<void(Status, std::vector<DppBlockInfo>)> cb,
      dht::RetryPolicy retry = {});

  const DppStats& stats() const { return stats_; }

  /// Number of terms owned here that have been split at least once.
  [[nodiscard]] size_t PartitionedTermCount() const;

 private:
  struct BlockEntry {
    std::string key;
    Condition cond;
    uint64_t count = 0;
    /// Document types with postings in this block (see DppBlockInfo).
    std::set<std::string> types;
  };
  struct TermState {
    std::vector<BlockEntry> blocks;
    bool split_in_progress = false;
    std::deque<dht::AppendRequest> queued;
    uint32_t next_block_seq = 1;
  };

  void ProcessAppend(const dht::AppendRequest& request);
  /// Index of the block a posting belongs to.
  [[nodiscard]] size_t FindBlock(TermState& st, const Posting& p);
  void MaybeSplit(const std::string& term_key);
  void FinishSplit(const std::string& term_key, size_t block_index,
                   std::string new_key, const DppSplitDone& done);
  /// Executes a split of a locally stored block and migrates the upper
  /// half; used for both the owner's local block and the holder role.
  void PerformLocalSplit(const std::string& block_key,
                         const std::string& new_block_key, bool random_split,
                         std::function<void(DppSplitDone)> done);

  dht::DhtPeer* peer_;
  DppOptions options_;
  DppStats stats_;
  Rng rng_;
  std::unordered_map<std::string, TermState> terms_;
};

}  // namespace kadop::index

#endif  // KADOP_INDEX_DPP_H_
