#include "index/structural_join.h"

#include <algorithm>
#include <vector>

namespace kadop::index {

namespace {

/// Nesting order of postings within a document stream: outer intervals
/// before inner ones, and for equal intervals (an element and its word
/// pseudo-nodes) lower levels first.
bool OpensBefore(const Posting& a, const Posting& b) {
  if (a.doc_id() != b.doc_id()) return a.doc_id() < b.doc_id();
  if (a.sid.start != b.sid.start) return a.sid.start < b.sid.start;
  if (a.sid.end != b.sid.end) return a.sid.end > b.sid.end;
  return a.sid.level < b.sid.level;
}

/// First index >= `from` whose posting belongs to a document >= `doc`,
/// by exponential search. A tiny list pruning a huge one skips whole
/// absent documents in O(log distance) instead of a linear walk, so the
/// semi-join is O(small * log large) on skewed inputs.
size_t GallopToDoc(const PostingList& list, size_t from, const DocId& doc) {
  if (from >= list.size() || !(list[from].doc_id() < doc)) return from;
  size_t step = 1;
  size_t lo = from;  // invariant: list[lo].doc_id() < doc
  while (from + step < list.size() &&
         list[from + step].doc_id() < doc) {
    lo = from + step;
    step <<= 1;
  }
  const size_t hi = std::min(from + step, list.size());
  return static_cast<size_t>(
      std::lower_bound(list.begin() + static_cast<ptrdiff_t>(lo) + 1,
                       list.begin() + static_cast<ptrdiff_t>(hi), doc,
                       [](const Posting& p, const DocId& d) {
                         return p.doc_id() < d;
                       }) -
      list.begin());
}

/// Shared sweep: walks `la` and `lb` in document order, maintaining the
/// stack of `la` postings whose intervals are still open at the current
/// position. Matching uses the level-aware `Encloses` test so word
/// pseudo-nodes behave as children of their element.
PostingList Sweep(const PostingList& la, const PostingList& lb,
                  bool collect_ancestors, bool parent_only) {
  PostingList out;
  struct Entry {
    Posting posting;
    bool matched = false;
  };
  std::vector<Entry> stack;
  size_t ia = 0;

  auto pop_entry = [&]() {
    Entry top = stack.back();
    stack.pop_back();
    if (top.matched && collect_ancestors) out.push_back(top.posting);
    if (top.matched && !parent_only) {
      // Any remaining entry enclosing the popped one also encloses its
      // witness descendant.
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->posting.sid.Encloses(top.posting.sid) &&
            it->posting.doc_id() == top.posting.doc_id()) {
          it->matched = true;
          break;
        }
      }
    }
  };

  auto drain_until = [&](const Posting& next) {
    while (!stack.empty() &&
           (stack.back().posting.doc_id() != next.doc_id() ||
            stack.back().posting.sid.end < next.sid.start)) {
      pop_entry();
    }
  };

  for (size_t ib = 0; ib < lb.size(); ++ib) {
    const Posting& b = lb[ib];
    // Galloping skips over documents present on only one side: `la`
    // entries in documents before b's can never enclose any remaining b
    // (they would be pushed and drained unmatched), and with nothing open
    // a b before la's next document can match nothing. Neither skip can
    // produce output in any mode, so results are unchanged.
    if (ia < la.size() && la[ia].doc_id() < b.doc_id()) {
      ia = GallopToDoc(la, ia, b.doc_id());
    }
    if (stack.empty()) {
      if (ia >= la.size()) break;  // nothing left that could match
      if (b.doc_id() < la[ia].doc_id()) {
        ib = GallopToDoc(lb, ib, la[ia].doc_id()) - 1;  // loop ++ lands on it
        continue;
      }
    }
    while (ia < la.size() && OpensBefore(la[ia], b)) {
      drain_until(la[ia]);
      stack.push_back(Entry{la[ia], false});
      ++ia;
    }
    drain_until(b);
    // Find the deepest stack entry that encloses (or is the parent of) b.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->posting.doc_id() != b.doc_id()) break;
      const bool hit = parent_only ? it->posting.sid.IsParentOf(b.sid)
                                   : it->posting.sid.Encloses(b.sid);
      if (hit) {
        if (collect_ancestors) {
          it->matched = true;
        } else {
          out.push_back(b);
        }
        break;
      }
      if (parent_only && it->posting.sid.Encloses(b.sid)) {
        // The deepest enclosing entry is not the parent; no shallower
        // entry can be either.
        break;
      }
    }
  }
  while (!stack.empty()) pop_entry();
  if (collect_ancestors) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

}  // namespace

PostingList AncestorSemiJoin(const PostingList& la, const PostingList& lb) {
  return Sweep(la, lb, /*collect_ancestors=*/true, /*parent_only=*/false);
}

PostingList DescendantSemiJoin(const PostingList& la, const PostingList& lb) {
  return Sweep(la, lb, /*collect_ancestors=*/false, /*parent_only=*/false);
}

PostingList ParentSemiJoin(const PostingList& la, const PostingList& lb) {
  return Sweep(la, lb, /*collect_ancestors=*/true, /*parent_only=*/true);
}

PostingList ChildSemiJoin(const PostingList& la, const PostingList& lb) {
  return Sweep(la, lb, /*collect_ancestors=*/false, /*parent_only=*/true);
}

}  // namespace kadop::index
