#include "index/structural_join.h"

#include <algorithm>
#include <vector>

namespace kadop::index {

namespace {

/// Nesting order of postings within a document stream: outer intervals
/// before inner ones, and for equal intervals (an element and its word
/// pseudo-nodes) lower levels first.
bool OpensBefore(const Posting& a, const Posting& b) {
  if (a.doc_id() != b.doc_id()) return a.doc_id() < b.doc_id();
  if (a.sid.start != b.sid.start) return a.sid.start < b.sid.start;
  if (a.sid.end != b.sid.end) return a.sid.end > b.sid.end;
  return a.sid.level < b.sid.level;
}

/// Shared sweep: walks `la` and `lb` in document order, maintaining the
/// stack of `la` postings whose intervals are still open at the current
/// position. Matching uses the level-aware `Encloses` test so word
/// pseudo-nodes behave as children of their element.
PostingList Sweep(const PostingList& la, const PostingList& lb,
                  bool collect_ancestors, bool parent_only) {
  PostingList out;
  struct Entry {
    Posting posting;
    bool matched = false;
  };
  std::vector<Entry> stack;
  size_t ia = 0;

  auto pop_entry = [&]() {
    Entry top = stack.back();
    stack.pop_back();
    if (top.matched && collect_ancestors) out.push_back(top.posting);
    if (top.matched && !parent_only) {
      // Any remaining entry enclosing the popped one also encloses its
      // witness descendant.
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->posting.sid.Encloses(top.posting.sid) &&
            it->posting.doc_id() == top.posting.doc_id()) {
          it->matched = true;
          break;
        }
      }
    }
  };

  auto drain_until = [&](const Posting& next) {
    while (!stack.empty() &&
           (stack.back().posting.doc_id() != next.doc_id() ||
            stack.back().posting.sid.end < next.sid.start)) {
      pop_entry();
    }
  };

  for (const Posting& b : lb) {
    while (ia < la.size() && OpensBefore(la[ia], b)) {
      drain_until(la[ia]);
      stack.push_back(Entry{la[ia], false});
      ++ia;
    }
    drain_until(b);
    // Find the deepest stack entry that encloses (or is the parent of) b.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->posting.doc_id() != b.doc_id()) break;
      const bool hit = parent_only ? it->posting.sid.IsParentOf(b.sid)
                                   : it->posting.sid.Encloses(b.sid);
      if (hit) {
        if (collect_ancestors) {
          it->matched = true;
        } else {
          out.push_back(b);
        }
        break;
      }
      if (parent_only && it->posting.sid.Encloses(b.sid)) {
        // The deepest enclosing entry is not the parent; no shallower
        // entry can be either.
        break;
      }
    }
  }
  while (!stack.empty()) pop_entry();
  if (collect_ancestors) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

}  // namespace

PostingList AncestorSemiJoin(const PostingList& la, const PostingList& lb) {
  return Sweep(la, lb, /*collect_ancestors=*/true, /*parent_only=*/false);
}

PostingList DescendantSemiJoin(const PostingList& la, const PostingList& lb) {
  return Sweep(la, lb, /*collect_ancestors=*/false, /*parent_only=*/false);
}

PostingList ParentSemiJoin(const PostingList& la, const PostingList& lb) {
  return Sweep(la, lb, /*collect_ancestors=*/true, /*parent_only=*/true);
}

PostingList ChildSemiJoin(const PostingList& la, const PostingList& lb) {
  return Sweep(la, lb, /*collect_ancestors=*/false, /*parent_only=*/true);
}

}  // namespace kadop::index
