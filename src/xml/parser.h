#ifndef KADOP_XML_PARSER_H_
#define KADOP_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/node.h"

namespace kadop::xml {

/// Parses the XML subset used by KadoP into a `Document`:
///   - optional XML declaration and comments,
///   - an optional DOCTYPE internal subset with
///     `<!ENTITY name SYSTEM "target">` declarations,
///   - elements with attributes (normalized into leading child elements,
///     each holding one text child),
///   - character data with the five predefined escapes,
///   - general entity references `&name;`, kept as EntityRef nodes (the
///     intensional data of Section 6),
///   - CDATA sections.
///
/// On success the document's structural ids are already annotated.
Result<Document> ParseDocument(std::string_view input, std::string uri = "");

/// Serializes a document back to XML text, including the DOCTYPE entity
/// declarations if any. Attribute child elements produced by the parser are
/// serialized as regular elements (normalization is not reversed).
[[nodiscard]] std::string SerializeDocument(const Document& doc);

/// Serializes a subtree.
[[nodiscard]] std::string SerializeNode(const Node& node);

}  // namespace kadop::xml

#endif  // KADOP_XML_PARSER_H_
