#ifndef KADOP_XML_CORPUS_H_
#define KADOP_XML_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "xml/node.h"

namespace kadop::xml::corpus {

/// Synthetic stand-ins for the corpora used in the paper's evaluation.
///
/// The real corpora (DBLP Aug-2006, IMDB, XMark, SwissProt, NASA, INEX HCO)
/// are not available offline, so each generator reproduces the properties
/// the experiments depend on:
///   - DBLP: many ~20 KB documents; heavy skew in posting-list sizes
///     (`author` >> `title` >> individual keywords), a moderately rare
///     planted author ("Ullman") and frequent title keywords;
///   - Table 1 datasets: realistic element-width distributions (mostly
///     narrow elements), which determine average dyadic-cover size;
///   - INEX: two-file publications (description + abstract via an XML
///     ENTITY include), exercising the Fundex.
///
/// All generators are deterministic given the seed.

/// Shared word source: a Zipf-distributed synthetic vocabulary with a set
/// of planted words at fixed ranks so that query terms have controlled
/// selectivities.
class WordBag {
 public:
  /// `vocab_size` synthetic words with Zipf exponent `s`. Planted words
  /// replace the word at their configured rank.
  WordBag(size_t vocab_size, double s,
          std::vector<std::pair<std::string, size_t>> planted = {});

  /// Draws one word.
  const std::string& Sample(Rng& rng) const;

  /// Appends `n` space-separated words to `out`.
  void SampleSentence(Rng& rng, size_t n, std::string& out) const;

 private:
  std::vector<std::string> words_;
  ZipfSampler sampler_;
};

struct DblpOptions {
  uint64_t seed = 42;
  /// Approximate total serialized size to generate.
  size_t target_bytes = 4 << 20;
  /// Approximate serialized size per document (the paper cuts DBLP into
  /// ~20 KB fragments).
  size_t doc_bytes = 20 << 10;
  /// Size of the author pool ("author" posting lists get ~2.5 postings per
  /// publication, Zipf-distributed over this pool).
  size_t author_pool = 2000;
  /// Rank of the planted author "Ullman" in the pool (lower = more
  /// frequent).
  size_t ullman_rank = 60;
};

/// DBLP-like bibliography fragments: root `dblp` holding `article` /
/// `inproceedings` entries with `author`+, `title`, `year`, venue.
std::vector<Document> GenerateDblp(const DblpOptions& options);

struct SimpleCorpusOptions {
  uint64_t seed = 42;
  /// Number of *element* nodes to approximately generate.
  size_t target_elements = 100000;
};

/// IMDB-like movie records (flat, bushy; ~100 K elements in Table 1).
std::vector<Document> GenerateImdb(const SimpleCorpusOptions& options);
/// XMark-like auction site (deeper nesting, mixed-content descriptions).
std::vector<Document> GenerateXmark(const SimpleCorpusOptions& options);
/// SwissProt-like protein entries (many small leaf elements).
std::vector<Document> GenerateSwissprot(const SimpleCorpusOptions& options);
/// NASA-like astronomical datasets (long textual sections).
std::vector<Document> GenerateNasa(const SimpleCorpusOptions& options);

struct InexOptions {
  uint64_t seed = 42;
  /// Number of publications; each yields two documents (description +
  /// abstract), like the 28 000-publication INEX HCO collection.
  size_t publications = 1000;
  /// Number of publications whose (title, abstract) pair matches the
  /// canonical Fundex query (title contains "system", abstract contains
  /// "interface"); the paper has 10 matches out of 28 000.
  size_t planted_matches = 10;
};

/// INEX-HCO-like collection: per publication, a main `article` document
/// whose `abstract` element is an entity include of a separate abstract
/// document. Main documents come first, then abstracts; the main document
/// for publication i is `inex/doc<i>.xml`, its abstract
/// `inex/abs<i>.xml`.
std::vector<Document> GenerateInex(const InexOptions& options);

/// Aggregate shape statistics over a corpus.
struct CorpusStats {
  size_t documents = 0;
  size_t elements = 0;
  size_t serialized_bytes = 0;
  double avg_depth = 0.0;
  uint32_t max_tag_number = 0;
};

CorpusStats ComputeStats(const std::vector<Document>& docs);

}  // namespace kadop::xml::corpus

#endif  // KADOP_XML_CORPUS_H_
