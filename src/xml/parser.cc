#include "xml/parser.h"

#include <cctype>
#include <utility>

namespace kadop::xml {

namespace {

/// Recursive-descent parser over a string_view. All methods return Status;
/// position and partial tree state live in the object.
class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Status Parse(Document& doc) {
    SkipMisc();
    KADOP_RETURN_IF_ERROR(ParseProlog(doc));
    SkipMisc();
    if (Eof()) return Err("expected a root element");
    auto root = Node::Element("");
    KADOP_RETURN_IF_ERROR(ParseElement(root.get()));
    // ParseElement fills the single child of the placeholder; unwrap.
    doc.root = root->DetachLastChild();
    SkipMisc();
    if (!Eof()) return Err("trailing content after root element");
    return Status::OK();
  }

 private:
  bool Eof() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool StartsWith(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void Advance(size_t n = 1) { pos_ += n; }

  Status Err(const std::string& what) const {
    return Status::Corruption("XML parse error at offset " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  /// Skips whitespace, comments and processing instructions between nodes.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (StartsWith("<!--")) {
        size_t end = in_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 3;
      } else if (StartsWith("<?")) {
        size_t end = in_.find("?>", pos_ + 2);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 2;
      } else {
        return;
      }
    }
  }

  Status ParseProlog(Document& doc) {
    if (!StartsWith("<!DOCTYPE")) return Status::OK();
    Advance(9);
    // Scan up to '[' (internal subset) or '>'.
    while (!Eof() && Peek() != '[' && Peek() != '>') Advance();
    if (Eof()) return Err("unterminated DOCTYPE");
    if (Peek() == '>') {
      Advance();
      return Status::OK();
    }
    Advance();  // '['
    for (;;) {
      SkipWhitespace();
      if (Eof()) return Err("unterminated DOCTYPE internal subset");
      if (Peek() == ']') {
        Advance();
        break;
      }
      if (StartsWith("<!ENTITY")) {
        Advance(8);
        SkipWhitespace();
        std::string name;
        KADOP_RETURN_IF_ERROR(ParseName(name));
        SkipWhitespace();
        std::string target;
        if (StartsWith("SYSTEM")) {
          Advance(6);
          SkipWhitespace();
          KADOP_RETURN_IF_ERROR(ParseQuoted(target));
        } else {
          // Internal entity: <!ENTITY name "replacement">. Stored the same
          // way; the replacement text plays the role of the target.
          KADOP_RETURN_IF_ERROR(ParseQuoted(target));
        }
        SkipWhitespace();
        if (Eof() || Peek() != '>') return Err("unterminated ENTITY decl");
        Advance();
        doc.entities[name] = target;
      } else {
        // Unknown declaration; skip to the closing '>'.
        while (!Eof() && Peek() != '>') Advance();
        if (!Eof()) Advance();
      }
    }
    SkipWhitespace();
    if (Eof() || Peek() != '>') return Err("unterminated DOCTYPE");
    Advance();
    return Status::OK();
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Status ParseName(std::string& out) {
    size_t begin = pos_;
    while (!Eof() && IsNameChar(Peek())) Advance();
    if (pos_ == begin) return Err("expected a name");
    out.assign(in_.substr(begin, pos_ - begin));
    return Status::OK();
  }

  Status ParseQuoted(std::string& out) {
    if (Eof() || (Peek() != '"' && Peek() != '\'')) {
      return Err("expected a quoted string");
    }
    const char quote = Peek();
    Advance();
    size_t begin = pos_;
    while (!Eof() && Peek() != quote) Advance();
    if (Eof()) return Err("unterminated quoted string");
    out.assign(in_.substr(begin, pos_ - begin));
    Advance();
    return Status::OK();
  }

  /// Parses one element (cursor on '<') and appends it to `parent`.
  Status ParseElement(Node* parent) {
    if (Eof() || Peek() != '<') return Err("expected '<'");
    Advance();
    std::string label;
    KADOP_RETURN_IF_ERROR(ParseName(label));
    Node* elem = parent->AddElement(std::move(label));

    // Attributes, normalized into leading child elements.
    for (;;) {
      SkipWhitespace();
      if (Eof()) return Err("unterminated start tag");
      if (Peek() == '>' || StartsWith("/>")) break;
      std::string attr_name;
      KADOP_RETURN_IF_ERROR(ParseName(attr_name));
      SkipWhitespace();
      if (Eof() || Peek() != '=') return Err("expected '=' in attribute");
      Advance();
      SkipWhitespace();
      std::string value;
      KADOP_RETURN_IF_ERROR(ParseQuoted(value));
      Node* attr = elem->AddElement(std::move(attr_name));
      attr->AddText(DecodeEscapes(value));
    }

    if (StartsWith("/>")) {
      Advance(2);
      return Status::OK();
    }
    Advance();  // '>'

    // Content.
    for (;;) {
      if (Eof()) return Err("unterminated element '" + elem->label() + "'");
      if (StartsWith("</")) {
        Advance(2);
        std::string close;
        KADOP_RETURN_IF_ERROR(ParseName(close));
        if (close != elem->label()) {
          return Err("mismatched close tag '" + close + "' for '" +
                     elem->label() + "'");
        }
        SkipWhitespace();
        if (Eof() || Peek() != '>') return Err("unterminated end tag");
        Advance();
        return Status::OK();
      }
      if (StartsWith("<!--")) {
        size_t end = in_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return Err("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (StartsWith("<![CDATA[")) {
        size_t end = in_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) return Err("unterminated CDATA");
        elem->AddText(std::string(in_.substr(pos_ + 9, end - pos_ - 9)));
        pos_ = end + 3;
        continue;
      }
      if (Peek() == '<') {
        KADOP_RETURN_IF_ERROR(ParseElement(elem));
        continue;
      }
      KADOP_RETURN_IF_ERROR(ParseText(elem));
    }
  }

  /// Parses character data up to the next '<', splitting out general entity
  /// references into EntityRef nodes.
  Status ParseText(Node* elem) {
    std::string buf;
    while (!Eof() && Peek() != '<') {
      if (Peek() == '&') {
        size_t semi = in_.find(';', pos_);
        if (semi == std::string_view::npos) return Err("unterminated entity");
        std::string name(in_.substr(pos_ + 1, semi - pos_ - 1));
        pos_ = semi + 1;
        if (name == "amp") {
          buf += '&';
        } else if (name == "lt") {
          buf += '<';
        } else if (name == "gt") {
          buf += '>';
        } else if (name == "quot") {
          buf += '"';
        } else if (name == "apos") {
          buf += '\'';
        } else {
          if (!OnlyWhitespace(buf)) elem->AddText(buf);
          buf.clear();
          elem->AddEntityRef(std::move(name));
        }
      } else {
        buf += Peek();
        Advance();
      }
    }
    if (!OnlyWhitespace(buf)) elem->AddText(std::move(buf));
    return Status::OK();
  }

  static bool OnlyWhitespace(const std::string& s) {
    for (char c : s) {
      if (!std::isspace(static_cast<unsigned char>(c))) return false;
    }
    return true;
  }

  static std::string DecodeEscapes(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '&') {
        if (s.compare(i, 5, "&amp;") == 0) {
          out += '&';
          i += 4;
          continue;
        }
        if (s.compare(i, 4, "&lt;") == 0) {
          out += '<';
          i += 3;
          continue;
        }
        if (s.compare(i, 4, "&gt;") == 0) {
          out += '>';
          i += 3;
          continue;
        }
        if (s.compare(i, 6, "&quot;") == 0) {
          out += '"';
          i += 5;
          continue;
        }
        if (s.compare(i, 6, "&apos;") == 0) {
          out += '\'';
          i += 5;
          continue;
        }
      }
      out += s[i];
    }
    return out;
  }

  std::string_view in_;
  size_t pos_ = 0;
};

void EscapeInto(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
}

void SerializeInto(const Node& node, std::string& out) {
  switch (node.type()) {
    case NodeType::kText:
      EscapeInto(node.text(), out);
      return;
    case NodeType::kEntityRef:
      out += '&';
      out += node.label();
      out += ';';
      return;
    case NodeType::kElement:
      break;
  }
  out += '<';
  out += node.label();
  if (node.children().empty()) {
    out += "/>";
    return;
  }
  out += '>';
  for (const auto& c : node.children()) SerializeInto(*c, out);
  out += "</";
  out += node.label();
  out += '>';
}

}  // namespace

Result<Document> ParseDocument(std::string_view input, std::string uri) {
  Document doc;
  doc.uri = std::move(uri);
  Parser parser(input);
  Status st = parser.Parse(doc);
  if (!st.ok()) return st;
  AnnotateSids(doc);
  return doc;
}

std::string SerializeNode(const Node& node) {
  std::string out;
  SerializeInto(node, out);
  return out;
}

std::string SerializeDocument(const Document& doc) {
  std::string out;
  if (!doc.entities.empty() && doc.root) {
    out += "<!DOCTYPE ";
    out += doc.root->label();
    out += " [\n";
    for (const auto& [name, target] : doc.entities) {
      out += "<!ENTITY " + name + " SYSTEM \"" + target + "\">\n";
    }
    out += "]>\n";
  }
  if (doc.root) SerializeInto(*doc.root, out);
  return out;
}

}  // namespace kadop::xml
