#include "xml/node.h"

#include <utility>

#include "common/logging.h"

namespace kadop::xml {

std::string StructuralId::ToString() const {
  return "(" + std::to_string(start) + ":" + std::to_string(end) + ":" +
         std::to_string(level) + ")";
}

std::unique_ptr<Node> Node::Element(std::string label) {
  auto n = std::unique_ptr<Node>(new Node(NodeType::kElement));
  n->label_ = std::move(label);
  return n;
}

std::unique_ptr<Node> Node::Text(std::string text) {
  auto n = std::unique_ptr<Node>(new Node(NodeType::kText));
  n->text_ = std::move(text);
  return n;
}

std::unique_ptr<Node> Node::EntityRef(std::string name) {
  auto n = std::unique_ptr<Node>(new Node(NodeType::kEntityRef));
  n->label_ = std::move(name);
  return n;
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  KADOP_CHECK(IsElement(), "only elements may have children");
  KADOP_CHECK(child != nullptr, "null child");
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AddElement(std::string label) {
  return AddChild(Element(std::move(label)));
}

Node* Node::AddText(std::string text) {
  return AddChild(Text(std::move(text)));
}

Node* Node::AddEntityRef(std::string name) {
  return AddChild(EntityRef(std::move(name)));
}

std::unique_ptr<Node> Node::DetachLastChild() {
  KADOP_CHECK(!children_.empty(), "no children to detach");
  std::unique_ptr<Node> child = std::move(children_.back());
  children_.pop_back();
  child->parent_ = nullptr;
  return child;
}

size_t Node::CountElements() const {
  size_t n = IsElement() ? 1 : 0;
  for (const auto& c : children_) n += c->CountElements();
  return n;
}

const Node* Node::FindChild(const std::string& label) const {
  for (const auto& c : children_) {
    if (c->IsElement() && c->label() == label) return c.get();
  }
  return nullptr;
}

namespace {

uint32_t AnnotateRecursive(Node* node, uint32_t counter, uint16_t level) {
  if (!node->IsElement()) return counter;
  StructuralId sid;
  sid.start = ++counter;
  sid.level = level;
  for (const auto& child : node->children()) {
    if (child->IsElement()) {
      counter = AnnotateRecursive(child.get(), counter, level + 1);
    }
  }
  sid.end = ++counter;
  node->set_sid(sid);
  // Non-element children inherit the enclosing interval, one level deeper.
  for (const auto& child : node->children()) {
    if (!child->IsElement()) {
      StructuralId tsid = sid;
      tsid.level = level + 1;
      child->set_sid(tsid);
    }
  }
  return counter;
}

}  // namespace

uint32_t AnnotateSids(Document& doc) {
  if (!doc.root) return 0;
  return AnnotateRecursive(doc.root.get(), 0, 1);
}

}  // namespace kadop::xml
