#ifndef KADOP_XML_SID_H_
#define KADOP_XML_SID_H_

#include <compare>
#include <cstdint>
#include <string>

namespace kadop::xml {

/// Structural identifier of an XML element: (start, end, level).
///
/// `start` (resp. `end`) is the number assigned to the element's opening
/// (resp. closing) tag when the document's tags are numbered in document
/// order by a single shared counter, starting at 1. `level` is the depth in
/// the tree (root = 1).
///
/// With this scheme `a` is an ancestor of `b` iff
/// `a.start < b.start && b.end < a.end`, and since element intervals never
/// partially overlap, `a.start < b.start < a.end` is already sufficient.
struct StructuralId {
  uint32_t start = 0;
  uint32_t end = 0;
  uint16_t level = 0;

  /// True if this element is a proper ancestor of `other`.
  [[nodiscard]] bool IsAncestorOf(const StructuralId& other) const {
    return start < other.start && other.end < end;
  }

  /// Level-aware containment that also covers word pseudo-nodes: a word
  /// posting carries its enclosing element's (start, end) one level deeper,
  /// so containment is non-strict on the interval but strict on the level.
  /// For two distinct elements this coincides with IsAncestorOf.
  [[nodiscard]] bool Encloses(const StructuralId& other) const {
    return start <= other.start && other.end <= end && level < other.level;
  }

  /// True if this element is the parent of `other` (ancestor one level up).
  [[nodiscard]] bool IsParentOf(const StructuralId& other) const {
    return Encloses(other) && level + 1 == other.level;
  }

  /// Width of the tag interval (number of tag positions it spans).
  [[nodiscard]] uint32_t Width() const { return end - start + 1; }

  /// Lexicographic order on (start, end, level); postings within a document
  /// are sorted by this, which coincides with document order on `start`.
  friend std::strong_ordering operator<=>(const StructuralId&,
                                          const StructuralId&) = default;

  std::string ToString() const;
};

}  // namespace kadop::xml

#endif  // KADOP_XML_SID_H_
