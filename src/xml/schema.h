#ifndef KADOP_XML_SCHEMA_H_
#define KADOP_XML_SCHEMA_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "xml/node.h"

namespace kadop::xml {

/// A DataGuide-style structural summary inferred from documents: the set
/// of distinct label paths, per-label child alphabets, and text presence.
///
/// KadoP uses it where the paper assumes "an XML schema or a DTD": the
/// representative-data-indexing of Section 6 replaces intensional content
/// by a *representative instance* of its type (in the spirit of the
/// representative objects of Nestorov et al. [28]), which this summary
/// constructs from the documents it has seen.
class StructuralSummary {
 public:
  StructuralSummary() = default;

  /// Folds a document's structure into the summary.
  void AddDocument(const Document& doc);
  /// Folds a subtree (useful for partial/intensional content).
  void AddSubtree(const Node& root);

  /// True if the exact root-to-leaf label path prefix occurs.
  [[nodiscard]] bool ContainsPath(const std::vector<std::string>& path) const;

  /// Number of distinct label paths observed (DataGuide size).
  [[nodiscard]] size_t DistinctPaths() const;

  /// Child labels ever observed under elements with `label`, or nullptr
  /// if the label was never seen.
  const std::set<std::string>* ChildrenOf(const std::string& label) const;

  /// True if elements with `label` were observed with direct text.
  [[nodiscard]] bool HasText(const std::string& label) const;

  /// Labels observed anywhere.
  std::vector<std::string> Labels() const;

  /// Builds the representative instance of the type rooted at `label`:
  /// one element per reachable label (cycle-safe, depth-capped), i.e. the
  /// skeleton a schema would prescribe. Returns nullptr for unknown
  /// labels.
  std::unique_ptr<Node> RepresentativeInstance(const std::string& label,
                                               size_t max_depth = 16) const;

  /// Merges another summary into this one.
  void Merge(const StructuralSummary& other);

 private:
  struct PathNode {
    std::map<std::string, std::unique_ptr<PathNode>> children;
    uint64_t count = 0;
    bool has_text = false;
  };
  struct LabelType {
    std::set<std::string> children;
    bool has_text = false;
    uint64_t count = 0;
  };

  void AddNode(const Node& node, PathNode* path_node);
  static void MergePath(const PathNode& src, PathNode* dst);
  static size_t CountPaths(const PathNode& node);
  static bool PathExists(const PathNode& node,
                         const std::vector<std::string>& path, size_t at);
  void BuildRepresentative(const std::string& label, Node* out,
                           std::set<std::string>& on_path,
                           size_t depth) const;

  PathNode root_;
  std::map<std::string, LabelType> types_;
};

}  // namespace kadop::xml

#endif  // KADOP_XML_SCHEMA_H_
