#include "xml/schema.h"

#include <utility>

namespace kadop::xml {

void StructuralSummary::AddDocument(const Document& doc) {
  if (doc.root) AddSubtree(*doc.root);
}

void StructuralSummary::AddSubtree(const Node& root) {
  if (!root.IsElement()) return;
  auto [it, inserted] = root_.children.try_emplace(root.label(), nullptr);
  if (inserted) it->second = std::make_unique<PathNode>();
  AddNode(root, it->second.get());
}

void StructuralSummary::AddNode(const Node& node, PathNode* path_node) {
  path_node->count++;
  LabelType& type = types_[node.label()];
  type.count++;
  for (const auto& child : node.children()) {
    if (child->IsText()) {
      path_node->has_text = true;
      type.has_text = true;
      continue;
    }
    if (!child->IsElement()) continue;
    type.children.insert(child->label());
    auto [it, inserted] =
        path_node->children.try_emplace(child->label(), nullptr);
    if (inserted) it->second = std::make_unique<PathNode>();
    AddNode(*child, it->second.get());
  }
}

bool StructuralSummary::PathExists(const PathNode& node,
                                   const std::vector<std::string>& path,
                                   size_t at) {
  if (at == path.size()) return true;
  auto it = node.children.find(path[at]);
  if (it == node.children.end()) return false;
  return PathExists(*it->second, path, at + 1);
}

bool StructuralSummary::ContainsPath(
    const std::vector<std::string>& path) const {
  return PathExists(root_, path, 0);
}

size_t StructuralSummary::CountPaths(const PathNode& node) {
  size_t total = 0;
  for (const auto& [label, child] : node.children) {
    total += 1 + CountPaths(*child);
  }
  return total;
}

size_t StructuralSummary::DistinctPaths() const { return CountPaths(root_); }

const std::set<std::string>* StructuralSummary::ChildrenOf(
    const std::string& label) const {
  auto it = types_.find(label);
  return it == types_.end() ? nullptr : &it->second.children;
}

bool StructuralSummary::HasText(const std::string& label) const {
  auto it = types_.find(label);
  return it != types_.end() && it->second.has_text;
}

std::vector<std::string> StructuralSummary::Labels() const {
  std::vector<std::string> out;
  out.reserve(types_.size());
  for (const auto& [label, type] : types_) out.push_back(label);
  return out;
}

void StructuralSummary::BuildRepresentative(const std::string& label,
                                            Node* out,
                                            std::set<std::string>& on_path,
                                            size_t depth) const {
  if (depth == 0) return;
  auto it = types_.find(label);
  if (it == types_.end()) return;
  for (const std::string& child : it->second.children) {
    if (on_path.count(child)) continue;  // break recursive types
    Node* child_node = out->AddElement(child);
    on_path.insert(child);
    BuildRepresentative(child, child_node, on_path, depth - 1);
    on_path.erase(child);
  }
}

std::unique_ptr<Node> StructuralSummary::RepresentativeInstance(
    const std::string& label, size_t max_depth) const {
  if (types_.find(label) == types_.end()) return nullptr;
  auto root = Node::Element(label);
  std::set<std::string> on_path{label};
  BuildRepresentative(label, root.get(), on_path, max_depth);
  return root;
}

void StructuralSummary::MergePath(const PathNode& src, PathNode* dst) {
  dst->count += src.count;
  dst->has_text |= src.has_text;
  for (const auto& [label, child] : src.children) {
    auto [it, inserted] = dst->children.try_emplace(label, nullptr);
    if (inserted) it->second = std::make_unique<PathNode>();
    MergePath(*child, it->second.get());
  }
}

void StructuralSummary::Merge(const StructuralSummary& other) {
  MergePath(other.root_, &root_);
  for (const auto& [label, type] : other.types_) {
    LabelType& mine = types_[label];
    mine.count += type.count;
    mine.has_text |= type.has_text;
    mine.children.insert(type.children.begin(), type.children.end());
  }
}

}  // namespace kadop::xml
