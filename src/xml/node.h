#ifndef KADOP_XML_NODE_H_
#define KADOP_XML_NODE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xml/sid.h"

namespace kadop::xml {

/// Node kinds in the DOM-lite tree. Attributes are normalized away by the
/// parser into child elements (the paper: "we do not distinguish between
/// elements and attributes"). Entity references (`&name;`) are kept as
/// explicit nodes — they are the *intensional* data the Fundex indexes.
enum class NodeType : uint8_t {
  kElement = 0,
  kText = 1,
  kEntityRef = 2,
};

/// A node in an XML document tree. Elements carry a label and children;
/// text nodes carry character data; entity-reference nodes carry the entity
/// name (resolved against the document's entity declarations).
class Node {
 public:
  /// Creates an element node.
  static std::unique_ptr<Node> Element(std::string label);
  /// Creates a text node.
  static std::unique_ptr<Node> Text(std::string text);
  /// Creates an entity-reference node for `&name;`.
  static std::unique_ptr<Node> EntityRef(std::string name);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeType type() const { return type_; }
  bool IsElement() const { return type_ == NodeType::kElement; }
  bool IsText() const { return type_ == NodeType::kText; }
  bool IsEntityRef() const { return type_ == NodeType::kEntityRef; }

  /// Element label, entity name, or empty for text nodes.
  const std::string& label() const { return label_; }
  /// Character data (text nodes only).
  const std::string& text() const { return text_; }

  /// Appends `child` and returns a raw pointer to it (the node keeps
  /// ownership). Only element nodes may have children.
  Node* AddChild(std::unique_ptr<Node> child);

  /// Convenience: appends a new element child with `label`.
  Node* AddElement(std::string label);
  /// Convenience: appends a new text child.
  Node* AddText(std::string text);
  /// Convenience: appends a new entity-reference child.
  Node* AddEntityRef(std::string name);

  /// Removes and returns the last child (parent pointer cleared).
  /// Requires at least one child.
  std::unique_ptr<Node> DetachLastChild();

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  Node* parent() const { return parent_; }

  /// Structural identifier, valid after AnnotateSids() ran on the document.
  const StructuralId& sid() const { return sid_; }
  void set_sid(const StructuralId& sid) { sid_ = sid; }

  /// Number of element nodes in the subtree rooted here (including self for
  /// elements).
  size_t CountElements() const;

  /// First child element with the given label, or nullptr.
  const Node* FindChild(const std::string& label) const;

 private:
  explicit Node(NodeType type) : type_(type) {}

  NodeType type_;
  std::string label_;
  std::string text_;
  std::vector<std::unique_ptr<Node>> children_;
  Node* parent_ = nullptr;
  StructuralId sid_;
};

/// A parsed XML document: a URI, entity declarations from the DTD internal
/// subset (`<!ENTITY name SYSTEM "target">`), and the element tree.
struct Document {
  std::string uri;
  /// Entity name -> target URI (the "function call" string of the Fundex).
  std::map<std::string, std::string> entities;
  std::unique_ptr<Node> root;

  /// Total number of element nodes.
  size_t CountElements() const {
    return root ? root->CountElements() : 0;
  }
};

/// Assigns structural ids over the whole document: a single counter numbers
/// every opening and closing tag in document order starting at 1; levels
/// start at 1 for the root. Text and entity-reference nodes receive the
/// enclosing element's (start, end) with their own level, so word postings
/// can reuse the parent interval.
/// Returns the last tag number used (== 2 * element count).
uint32_t AnnotateSids(Document& doc);

}  // namespace kadop::xml

#endif  // KADOP_XML_NODE_H_
