#include "xml/corpus.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/logging.h"
#include "xml/parser.h"

namespace kadop::xml::corpus {

namespace {

std::string SyntheticWord(size_t i) {
  // Varying-length pronounceable-ish tokens: "wa", "keb", "ruzo", ...
  static const char* kCons = "bcdfgklmnprstvz";
  static const char* kVow = "aeiou";
  std::string w;
  size_t x = i + 7;
  while (x > 0) {
    w += kCons[x % 15];
    x /= 15;
    w += kVow[x % 5];
    x /= 5;
  }
  return w;
}

std::string AuthorName(size_t rank, size_t ullman_rank) {
  if (rank == ullman_rank) return "Ullman";
  std::string w = SyntheticWord(rank * 31 + 5);
  w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
  return "Auth" + w;
}

}  // namespace

WordBag::WordBag(size_t vocab_size, double s,
                 std::vector<std::pair<std::string, size_t>> planted)
    : sampler_(vocab_size, s) {
  words_.reserve(vocab_size);
  for (size_t i = 0; i < vocab_size; ++i) words_.push_back(SyntheticWord(i));
  for (auto& [word, rank] : planted) {
    KADOP_CHECK(rank < vocab_size, "planted rank out of range");
    words_[rank] = std::move(word);
  }
}

const std::string& WordBag::Sample(Rng& rng) const {
  return words_[sampler_.Sample(rng)];
}

void WordBag::SampleSentence(Rng& rng, size_t n, std::string& out) const {
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += Sample(rng);
  }
}

std::vector<Document> GenerateDblp(const DblpOptions& options) {
  Rng rng(options.seed);
  WordBag titles(5000, 1.05,
                 {{"system", 40}, {"xml", 120}, {"database", 80},
                  {"query", 55}, {"graph", 150}});
  ZipfSampler authors(options.author_pool, 0.9);

  std::vector<Document> docs;
  size_t total_bytes = 0;
  size_t doc_index = 0;
  while (total_bytes < options.target_bytes) {
    Document doc;
    doc.uri = "dblp/part" + std::to_string(doc_index++) + ".xml";
    doc.root = Node::Element("dblp");
    size_t doc_bytes = 0;
    while (doc_bytes < options.doc_bytes) {
      const double kind = rng.NextDouble();
      const char* tag = kind < 0.40 ? "article"
                        : kind < 0.85 ? "inproceedings"
                                      : "incollection";
      Node* entry = doc.root->AddElement(tag);
      const size_t n_authors = 1 + rng.Uniform(4);
      for (size_t a = 0; a < n_authors; ++a) {
        entry->AddElement("author")->AddText(
            AuthorName(authors.Sample(rng), options.ullman_rank));
      }
      std::string title_text;
      titles.SampleSentence(rng, 5 + rng.Uniform(8), title_text);
      entry->AddElement("title")->AddText(std::move(title_text));
      entry->AddElement("year")->AddText(
          std::to_string(1970 + rng.Uniform(37)));
      if (kind < 0.40) {
        entry->AddElement("journal")->AddText(
            "J" + SyntheticWord(rng.Uniform(50)));
        entry->AddElement("volume")->AddText(
            std::to_string(1 + rng.Uniform(40)));
      } else {
        entry->AddElement("booktitle")->AddText(
            "Proc" + SyntheticWord(rng.Uniform(80)));
      }
      entry->AddElement("pages")->AddText(std::to_string(rng.Uniform(500)) +
                                          "-" +
                                          std::to_string(rng.Uniform(500)));
      // Rough serialized footprint of one entry; exact size is recomputed
      // below from the serializer.
      doc_bytes += 220 + 18 * n_authors;
    }
    AnnotateSids(doc);
    total_bytes += SerializeDocument(doc).size();
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<Document> GenerateImdb(const SimpleCorpusOptions& options) {
  Rng rng(options.seed);
  WordBag words(3000, 1.0, {{"love", 30}, {"war", 90}});
  std::vector<Document> docs;
  size_t elements = 0;
  size_t doc_index = 0;
  while (elements < options.target_elements) {
    Document doc;
    doc.uri = "imdb/part" + std::to_string(doc_index++) + ".xml";
    doc.root = Node::Element("imdb");
    for (size_t m = 0; m < 200 && elements < options.target_elements; ++m) {
      Node* movie = doc.root->AddElement("movie");
      std::string t;
      words.SampleSentence(rng, 2 + rng.Uniform(4), t);
      movie->AddElement("title")->AddText(std::move(t));
      movie->AddElement("year")->AddText(
          std::to_string(1930 + rng.Uniform(80)));
      movie->AddElement("genre")->AddText(SyntheticWord(rng.Uniform(20)));
      const size_t n_actors = 3 + rng.Uniform(6);
      Node* cast = movie->AddElement("cast");
      for (size_t a = 0; a < n_actors; ++a) {
        cast->AddElement("actor")->AddText(
            "Act" + SyntheticWord(rng.Uniform(4000)));
      }
      movie->AddElement("director")->AddText(
          "Dir" + SyntheticWord(rng.Uniform(800)));
      elements += 6 + n_actors;
    }
    AnnotateSids(doc);
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<Document> GenerateXmark(const SimpleCorpusOptions& options) {
  Rng rng(options.seed);
  WordBag words(4000, 1.0, {});
  std::vector<Document> docs;
  size_t elements = 0;
  size_t doc_index = 0;
  static const char* kRegions[] = {"africa", "asia", "europe",
                                   "namerica", "samerica"};
  while (elements < options.target_elements) {
    Document doc;
    doc.uri = "xmark/part" + std::to_string(doc_index++) + ".xml";
    doc.root = Node::Element("site");
    Node* regions = doc.root->AddElement("regions");
    for (const char* region_name : kRegions) {
      Node* region = regions->AddElement(region_name);
      const size_t n_items = 4 + rng.Uniform(8);
      for (size_t i = 0; i < n_items; ++i) {
        Node* item = region->AddElement("item");
        std::string name;
        words.SampleSentence(rng, 1 + rng.Uniform(3), name);
        item->AddElement("name")->AddText(std::move(name));
        Node* descr = item->AddElement("description");
        Node* parlist = descr->AddElement("parlist");
        const size_t n_par = 1 + rng.Uniform(4);
        for (size_t p = 0; p < n_par; ++p) {
          std::string body;
          words.SampleSentence(rng, 8 + rng.Uniform(20), body);
          parlist->AddElement("listitem")->AddText(std::move(body));
        }
        Node* mailbox = item->AddElement("mailbox");
        const size_t n_mail = rng.Uniform(3);
        for (size_t mm = 0; mm < n_mail; ++mm) {
          Node* mail = mailbox->AddElement("mail");
          mail->AddElement("from")->AddText(SyntheticWord(rng.Uniform(900)));
          mail->AddElement("date")->AddText("2000-01-01");
          std::string body;
          words.SampleSentence(rng, 10 + rng.Uniform(15), body);
          mail->AddElement("text")->AddText(std::move(body));
        }
        elements += 5 + n_par + 4 * n_mail;
      }
    }
    Node* people = doc.root->AddElement("people");
    const size_t n_people = 20 + rng.Uniform(20);
    for (size_t p = 0; p < n_people; ++p) {
      Node* person = people->AddElement("person");
      person->AddElement("name")->AddText(
          "P" + SyntheticWord(rng.Uniform(3000)));
      person->AddElement("emailaddress")
          ->AddText(SyntheticWord(rng.Uniform(3000)) + "@example.org");
      elements += 3;
    }
    AnnotateSids(doc);
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<Document> GenerateSwissprot(const SimpleCorpusOptions& options) {
  Rng rng(options.seed);
  WordBag words(2500, 1.0, {});
  std::vector<Document> docs;
  size_t elements = 0;
  size_t doc_index = 0;
  while (elements < options.target_elements) {
    Document doc;
    doc.uri = "sprot/part" + std::to_string(doc_index++) + ".xml";
    doc.root = Node::Element("root");
    for (size_t e = 0; e < 120 && elements < options.target_elements; ++e) {
      Node* entry = doc.root->AddElement("Entry");
      entry->AddElement("AC")->AddText("P" + std::to_string(rng.Uniform(99999)));
      entry->AddElement("Mod")->AddText("2006-08-01");
      std::string descr;
      words.SampleSentence(rng, 4 + rng.Uniform(8), descr);
      entry->AddElement("Descr")->AddText(std::move(descr));
      entry->AddElement("Species")->AddText(SyntheticWord(rng.Uniform(400)));
      Node* ref = entry->AddElement("Ref");
      const size_t n_auth = 1 + rng.Uniform(5);
      for (size_t a = 0; a < n_auth; ++a) {
        ref->AddElement("Author")->AddText(
            "A" + SyntheticWord(rng.Uniform(2500)));
      }
      ref->AddElement("Cite")->AddText(SyntheticWord(rng.Uniform(600)));
      const size_t n_kw = 1 + rng.Uniform(4);
      for (size_t k = 0; k < n_kw; ++k) {
        entry->AddElement("Keyword")->AddText(SyntheticWord(rng.Uniform(200)));
      }
      const size_t n_feat = rng.Uniform(6);
      for (size_t f = 0; f < n_feat; ++f) {
        Node* feat = entry->AddElement("Features");
        feat->AddElement("from")->AddText(std::to_string(rng.Uniform(900)));
        feat->AddElement("to")->AddText(std::to_string(rng.Uniform(900)));
      }
      elements += 7 + n_auth + n_kw + 3 * n_feat;
    }
    AnnotateSids(doc);
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<Document> GenerateNasa(const SimpleCorpusOptions& options) {
  Rng rng(options.seed);
  WordBag words(3500, 1.0, {});
  std::vector<Document> docs;
  size_t elements = 0;
  size_t doc_index = 0;
  while (elements < options.target_elements) {
    Document doc;
    doc.uri = "nasa/part" + std::to_string(doc_index++) + ".xml";
    doc.root = Node::Element("datasets");
    for (size_t d = 0; d < 60 && elements < options.target_elements; ++d) {
      Node* ds = doc.root->AddElement("dataset");
      std::string title;
      words.SampleSentence(rng, 3 + rng.Uniform(6), title);
      ds->AddElement("title")->AddText(std::move(title));
      ds->AddElement("altname")->AddText(SyntheticWord(rng.Uniform(800)));
      Node* abstract = ds->AddElement("abstract");
      const size_t n_par = 1 + rng.Uniform(5);
      for (size_t p = 0; p < n_par; ++p) {
        std::string body;
        words.SampleSentence(rng, 20 + rng.Uniform(40), body);
        abstract->AddElement("para")->AddText(std::move(body));
      }
      const size_t n_auth = 1 + rng.Uniform(4);
      for (size_t a = 0; a < n_auth; ++a) {
        Node* author = ds->AddElement("author");
        author->AddElement("lastName")->AddText(
            "N" + SyntheticWord(rng.Uniform(1500)));
        author->AddElement("initial")->AddText("X");
      }
      Node* table = ds->AddElement("tableHead");
      const size_t n_fields = 2 + rng.Uniform(6);
      for (size_t f = 0; f < n_fields; ++f) {
        table->AddElement("field")->AddText(SyntheticWord(rng.Uniform(300)));
      }
      elements += 5 + n_par + 3 * n_auth + n_fields;
    }
    AnnotateSids(doc);
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<Document> GenerateInex(const InexOptions& options) {
  Rng rng(options.seed);
  WordBag words(3000, 1.0,
                {{"system", 35}, {"interface", 300}, {"graph", 250}});
  std::vector<Document> mains;
  std::vector<Document> abstracts;
  mains.reserve(options.publications);
  abstracts.reserve(options.publications);
  // Planted matches are spread evenly across the collection.
  const size_t stride =
      options.planted_matches == 0
          ? options.publications + 1
          : std::max<size_t>(1, options.publications / options.planted_matches);
  for (size_t i = 0; i < options.publications; ++i) {
    const bool planted = options.planted_matches > 0 && i % stride == 0 &&
                         i / stride < options.planted_matches;
    const std::string abs_uri = "inex/abs" + std::to_string(i) + ".xml";

    Document main;
    main.uri = "inex/doc" + std::to_string(i) + ".xml";
    main.entities["thisabstract"] = abs_uri;
    main.root = Node::Element("article");
    const size_t n_auth = 1 + rng.Uniform(3);
    for (size_t a = 0; a < n_auth; ++a) {
      main.root->AddElement("author")->AddText(
          "A" + SyntheticWord(rng.Uniform(2000)));
    }
    std::string title;
    words.SampleSentence(rng, 4 + rng.Uniform(6), title);
    if (planted) title += " system";
    main.root->AddElement("title")->AddText(std::move(title));
    main.root->AddElement("year")->AddText(
        std::to_string(1995 + rng.Uniform(12)));
    // The abstract element's content is intensional: an entity include.
    main.root->AddElement("abstract")->AddEntityRef("thisabstract");
    AnnotateSids(main);
    mains.push_back(std::move(main));

    Document abs;
    abs.uri = abs_uri;
    abs.root = Node::Element("abstractBody");
    std::string body;
    words.SampleSentence(rng, 40 + rng.Uniform(60), body);
    if (planted) body += " interface";
    abs.root->AddElement("para")->AddText(std::move(body));
    AnnotateSids(abs);
    abstracts.push_back(std::move(abs));
  }
  std::vector<Document> docs;
  docs.reserve(mains.size() + abstracts.size());
  for (auto& d : mains) docs.push_back(std::move(d));
  for (auto& d : abstracts) docs.push_back(std::move(d));
  return docs;
}

namespace {
void DepthStats(const Node& node, size_t depth, size_t& sum, size_t& count) {
  if (node.IsElement()) {
    sum += depth;
    ++count;
  }
  for (const auto& c : node.children()) DepthStats(*c, depth + 1, sum, count);
}
}  // namespace

CorpusStats ComputeStats(const std::vector<Document>& docs) {
  CorpusStats stats;
  stats.documents = docs.size();
  size_t depth_sum = 0;
  for (const auto& doc : docs) {
    if (!doc.root) continue;
    size_t count = 0;
    DepthStats(*doc.root, 1, depth_sum, count);
    stats.elements += count;
    stats.serialized_bytes += SerializeDocument(doc).size();
    if (doc.root->sid().end > stats.max_tag_number) {
      stats.max_tag_number = doc.root->sid().end;
    }
  }
  if (stats.elements > 0) {
    stats.avg_depth =
        static_cast<double>(depth_sum) / static_cast<double>(stats.elements);
  }
  return stats;
}

}  // namespace kadop::xml::corpus
