#ifndef KADOP_FUNDEX_FUNDEX_H_
#define KADOP_FUNDEX_FUNDEX_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dht/peer.h"
#include "index/doc_store.h"
#include "index/publisher.h"
#include "query/executor.h"
#include "query/tree_pattern.h"
#include "sim/message.h"
#include "xml/node.h"
#include "xml/schema.h"

namespace kadop::fundex {

/// How intensional data (XML entity includes / function calls, Section 6)
/// is indexed.
enum class IntensionalMode : uint8_t {
  /// Index documents as they are; intensional content is invisible to the
  /// index (incomplete answers — the paper's "naive").
  kNaive = 0,
  /// The Fundex: functional documents are materialized and indexed once,
  /// under a functional id; the Rev relation maps fids back to the
  /// elements holding the calls, and queries complete potential answers
  /// with a theta-join.
  kFundexSimple = 1,
  /// Representative-data-indexing: a label-only skeleton of the target is
  /// indexed in place of the include, with "any word" markers; value
  /// conditions under intensional nodes are ignored (lossy: full recall,
  /// reduced precision, no backward-pointer chasing).
  kFundexRepresentative = 2,
  /// In-lining: includes are expanded before indexing (from the indexing
  /// viewpoint only). Most precise; re-indexes shared content per
  /// occurrence.
  kInline = 3,
};

[[nodiscard]] std::string_view IntensionalModeName(IntensionalMode mode);

/// Resolves a function call / include target to its document ("calling"
/// f(u)). In the simulation, a lookup into the generated corpus.
using Resolver =
    std::function<const xml::Document*(const std::string& uri)>;

/// The reserved word key whose postings mark representative skeleton
/// elements ("may contain any word").
[[nodiscard]] std::string AnyWordKey();

/// Rev-relation DHT key for a functional sequence id.
[[nodiscard]] std::string RevKey(index::DocSeq fid_seq);
/// Function-call DHT key for a target uri.
[[nodiscard]] std::string FunKey(const std::string& uri);
/// Functional document sequence id: high bit set + 31 bits of the uri hash.
[[nodiscard]] index::DocSeq FidSeq(const std::string& uri);
/// True if a posting belongs to a functional (virtual) document.
[[nodiscard]] bool IsFunctionalDoc(const index::Posting& p);

/// Routed request asking the peer in charge of `fun:<uri>` to materialize
/// and index the function result (idempotent: re-requests are no-ops).
struct IndexFunctionRequest final : sim::Payload {
  std::string uri;

  size_t SizeBytes() const override { return uri.size() + 8; }
  std::string_view TypeName() const override {
    return "IndexFunctionRequest";
  }
};

struct FundexStats {
  uint64_t functions_indexed = 0;
  uint64_t duplicate_requests = 0;
  uint64_t rev_entries = 0;

  void Add(const FundexStats& other) {
    functions_indexed += other.functions_indexed;
    duplicate_requests += other.duplicate_requests;
    rev_entries += other.rev_entries;
  }
};

/// Per-peer Fundex service: publishing-side handling of intensional data
/// and the owner role for `fun:` keys.
class FundexService {
 public:
  FundexService(dht::DhtPeer* peer, index::DocStore* doc_store,
                Resolver resolver);

  FundexService(const FundexService&) = delete;
  FundexService& operator=(const FundexService&) = delete;

  /// Publishes documents under the given intensional mode. Documents with
  /// no entity references behave identically in all modes. `on_done` fires
  /// when all postings (including function indexing triggered here) have
  /// been issued and acked.
  void Publish(const std::vector<const xml::Document*>& docs,
               IntensionalMode mode, index::PublishOptions options,
               std::function<void()> on_done);

  /// Handles `fun:` owner messages; false if not a Fundex payload.
  [[nodiscard]] bool HandleApp(const dht::AppRequest& request, sim::NodeIndex from);

  const FundexStats& stats() const { return stats_; }

  /// The structural summary inferred from the intensional targets seen so
  /// far (the "schema" behind the representative instances).
  const xml::StructuralSummary& summary() const { return summary_; }

 private:
  /// Returns a deep copy of `doc` with every entity reference replaced by
  /// the resolved target subtree (in-lining) or by its label-only skeleton
  /// with AnyWord markers (representative). Re-annotates sids.
  std::unique_ptr<xml::Document> Expand(const xml::Document& doc,
                                        bool representative);
  /// Emits Rev entries and function-indexing requests for `doc`.
  void EmitFunctionCalls(const xml::Document& doc, index::DocSeq doc_seq);
  /// Indexes a functional document under its fid (owner role).
  void IndexFunction(const std::string& uri);

  dht::DhtPeer* peer_;
  index::DocStore* doc_store_;
  Resolver resolver_;
  FundexStats stats_;
  /// Documents already processed within the current Publish call; used to
  /// pre-compute the DocSeq the publisher will assign.
  size_t pending_marker_docs_ = 0;
  std::set<std::string> indexed_functions_;
  /// Inferred type summary of intensional targets (representative mode).
  xml::StructuralSummary summary_;
  /// Expanded document copies must outlive the simulation.
  std::vector<std::unique_ptr<xml::Document>> owned_docs_;
};

/// Result of a Fundex-aware index query.
struct FundexQueryResult {
  std::vector<query::Answer> answers;
  std::vector<index::DocId> matched_docs;
  double response_time = 0.0;
  uint64_t posting_bytes = 0;
  uint64_t rev_lookups = 0;
  bool complete = true;
};

/// Runs an index query under the given intensional mode (Section 6 query
/// processing): fetches the term lists, and for kFundexSimple maps
/// functional matches through the Rev relation back to the citing
/// elements before the final twig join. For kFundexRepresentative, word
/// streams are widened with the AnyWord markers instead.
void RunFundexQuery(dht::DhtPeer* peer, const query::TreePattern& pattern,
                    IntensionalMode mode,
                    std::function<void(FundexQueryResult)> callback);

}  // namespace kadop::fundex

#endif  // KADOP_FUNDEX_FUNDEX_H_
