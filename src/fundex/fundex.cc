#include "fundex/fundex.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "index/codec.h"
#include "index/terms.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/parser.h"

namespace kadop::fundex {

namespace {

struct FundexCounters {
  obs::Counter* functions_indexed;
  obs::Counter* duplicate_requests;
  obs::Counter* rev_entries;
  obs::Counter* rev_lookups;
  obs::Counter* completion_joins;

  FundexCounters() {
    auto& r = obs::MetricRegistry::Default();
    functions_indexed = r.GetCounter("fundex.functions_indexed");
    duplicate_requests = r.GetCounter("fundex.duplicate_requests");
    rev_entries = r.GetCounter("fundex.rev_entries");
    rev_lookups = r.GetCounter("fundex.rev_lookups");
    completion_joins = r.GetCounter("fundex.completion_joins");
  }
};

FundexCounters& FX() {
  static FundexCounters counters;
  return counters;
}

}  // namespace

using index::DocSeq;
using index::Posting;
using index::PostingList;
using sim::TrafficCategory;

std::string_view IntensionalModeName(IntensionalMode mode) {
  switch (mode) {
    case IntensionalMode::kNaive:
      return "naive";
    case IntensionalMode::kFundexSimple:
      return "fundex-simple";
    case IntensionalMode::kFundexRepresentative:
      return "fundex-representative";
    case IntensionalMode::kInline:
      return "inlining";
  }
  return "unknown";
}

std::string AnyWordKey() { return "w:\x01anyword"; }

DocSeq FidSeq(const std::string& uri) {
  return 0x80000000u | (static_cast<uint32_t>(Fnv1a64(uri)) & 0x7fffffffu);
}

std::string RevKey(DocSeq fid_seq) {
  return "rev:" + std::to_string(fid_seq);
}

std::string FunKey(const std::string& uri) { return "fun:" + uri; }

bool IsFunctionalDoc(const Posting& p) { return (p.doc & 0x80000000u) != 0; }

// ---------------------------------------------------------------------------
// FundexService

FundexService::FundexService(dht::DhtPeer* peer, index::DocStore* doc_store,
                             Resolver resolver)
    : peer_(peer), doc_store_(doc_store), resolver_(std::move(resolver)) {
  KADOP_CHECK(peer_ != nullptr && doc_store_ != nullptr,
              "FundexService requires a peer and doc store");
}

namespace {

/// Collects every element of a subtree (for AnyWord markers).
void CollectElements(xml::Node* node, std::vector<xml::Node*>& out) {
  if (!node->IsElement()) return;
  out.push_back(node);
  for (const auto& child : node->children()) {
    CollectElements(child.get(), out);
  }
}

void ExpandInto(const xml::Node& src, xml::Node* dst,
                const xml::Document& doc, const Resolver& resolver,
                xml::StructuralSummary* summary,
                std::vector<xml::Node*>& skeleton) {
  const bool representative = summary != nullptr;
  for (const auto& child : src.children()) {
    if (child->IsEntityRef()) {
      auto it = doc.entities.find(child->label());
      const xml::Document* target =
          it == doc.entities.end() ? nullptr : resolver(it->second);
      if (target == nullptr || target->root == nullptr) continue;
      if (representative) {
        // Fold the target into the inferred type summary, then splice the
        // type's representative instance (not the instance itself): the
        // paper's representative-data-indexing with a DataGuide standing
        // in for the schema/DTD.
        summary->AddSubtree(*target->root);
        std::unique_ptr<xml::Node> instance =
            summary->RepresentativeInstance(target->root->label());
        if (instance != nullptr) {
          CollectElements(instance.get(), skeleton);
          dst->AddChild(std::move(instance));
        }
      } else {
        // In-lining: splice a full copy of the target (recursively
        // expanding nested includes against the target's own entities).
        auto copy = xml::Node::Element(target->root->label());
        ExpandInto(*target->root, copy.get(), *target, resolver,
                   /*summary=*/nullptr, skeleton);
        dst->AddChild(std::move(copy));
      }
      continue;
    }
    if (child->IsText()) {
      dst->AddText(child->text());
      continue;
    }
    auto elem = xml::Node::Element(child->label());
    xml::Node* raw = dst->AddChild(std::move(elem));
    ExpandInto(*child, raw, doc, resolver, summary, skeleton);
  }
}

bool HasEntityRefs(const xml::Node& node) {
  if (node.IsEntityRef()) return true;
  for (const auto& child : node.children()) {
    if (HasEntityRefs(*child)) return true;
  }
  return false;
}

void CollectEntityRefs(
    const xml::Node& node,
    std::vector<std::pair<std::string, xml::StructuralId>>& refs) {
  if (node.IsEntityRef()) {
    refs.emplace_back(node.label(), node.sid());
    return;
  }
  for (const auto& child : node.children()) CollectEntityRefs(*child, refs);
}

}  // namespace

std::unique_ptr<xml::Document> FundexService::Expand(
    const xml::Document& doc, bool representative) {
  auto expanded = std::make_unique<xml::Document>();
  expanded->uri = doc.uri;
  std::vector<xml::Node*> skeleton;
  expanded->root = xml::Node::Element(doc.root->label());
  ExpandInto(*doc.root, expanded->root.get(), doc, resolver_,
             representative ? &summary_ : nullptr, skeleton);
  xml::AnnotateSids(*expanded);
  if (representative && !skeleton.empty()) {
    // AnyWord markers: each skeleton element "may contain any word".
    // Issued as ordinary postings under the reserved key, one level deeper
    // than the element, exactly like a word posting.
    const DocSeq seq = static_cast<DocSeq>(doc_store_->size()) +
                       static_cast<DocSeq>(pending_marker_docs_);
    PostingList markers;
    for (const xml::Node* n : skeleton) {
      xml::StructuralId sid = n->sid();
      sid.level += 1;
      markers.push_back(Posting{peer_->node(), seq, sid});
    }
    std::sort(markers.begin(), markers.end());
    peer_->Append(AnyWordKey(), std::move(markers));
  }
  return expanded;
}

void FundexService::EmitFunctionCalls(const xml::Document& doc,
                                      DocSeq doc_seq) {
  std::vector<std::pair<std::string, xml::StructuralId>> refs;
  if (doc.root) CollectEntityRefs(*doc.root, refs);
  for (const auto& [name, sid] : refs) {
    auto it = doc.entities.find(name);
    if (it == doc.entities.end()) continue;
    const std::string& uri = it->second;
    // Rev: fid -> occurrences of the call (the entity-ref position, which
    // already carries the parent element's interval one level deeper).
    stats_.rev_entries++;
    FX().rev_entries->Increment();
    peer_->Append(RevKey(FidSeq(uri)),
                  {Posting{peer_->node(), doc_seq, sid}});
    // Ask the peer in charge of fun:<uri> to materialize and index it.
    auto req = std::make_shared<IndexFunctionRequest>();
    req->uri = uri;
    peer_->RouteApp(FunKey(uri), std::move(req), TrafficCategory::kPublish,
                    nullptr);
  }
}

void FundexService::Publish(const std::vector<const xml::Document*>& docs,
                            IntensionalMode mode,
                            index::PublishOptions options,
                            std::function<void()> on_done) {
  std::vector<const xml::Document*> to_publish;
  to_publish.reserve(docs.size());
  const DocSeq start_seq = static_cast<DocSeq>(doc_store_->size());

  pending_marker_docs_ = 0;
  for (const xml::Document* doc : docs) {
    const bool intensional = doc->root && HasEntityRefs(*doc->root);
    if (intensional && (mode == IntensionalMode::kInline ||
                        mode == IntensionalMode::kFundexRepresentative)) {
      owned_docs_.push_back(Expand(
          *doc, mode == IntensionalMode::kFundexRepresentative));
      to_publish.push_back(owned_docs_.back().get());
    } else {
      to_publish.push_back(doc);
    }
    ++pending_marker_docs_;
  }

  auto publisher = std::make_shared<index::Publisher>(peer_, doc_store_,
                                                      options);
  publisher->Publish(to_publish, [publisher, on_done = std::move(on_done)]() {
    if (on_done) on_done();
  });

  if (mode == IntensionalMode::kFundexSimple) {
    for (size_t i = 0; i < docs.size(); ++i) {
      EmitFunctionCalls(*docs[i], start_seq + static_cast<DocSeq>(i));
    }
  }
}

void FundexService::IndexFunction(const std::string& uri) {
  if (!indexed_functions_.insert(uri).second) {
    stats_.duplicate_requests++;
    FX().duplicate_requests->Increment();
    return;  // already materialized and indexed — nothing to do
  }
  const xml::Document* doc = resolver_(uri);
  if (doc == nullptr) return;
  stats_.functions_indexed++;
  FX().functions_indexed->Increment();

  // Materialization: the function result is produced locally (modelled as
  // a disk-sized scan), indexed under the functional id, then discarded.
  const std::string serialized = xml::SerializeDocument(*doc);
  peer_->ScheduleAfterDisk(static_cast<double>(serialized.size()),
                           /*write=*/false, []() {});

  std::vector<index::TermPosting> postings;
  index::ExtractTerms(*doc, peer_->node(), FidSeq(uri), {}, postings);
  std::map<std::string, PostingList> buffers;
  for (auto& tp : postings) buffers[tp.key].push_back(tp.posting);
  for (auto& [key, list] : buffers) {
    peer_->Append(key, std::move(list));
  }
}

bool FundexService::HandleApp(const dht::AppRequest& request,
                              sim::NodeIndex /*from*/) {
  if (const auto* req =
          dynamic_cast<const IndexFunctionRequest*>(request.inner.get())) {
    IndexFunction(req->uri);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Fundex-aware query evaluation

namespace {

struct FundexQueryContext
    : public std::enable_shared_from_this<FundexQueryContext> {
  dht::DhtPeer* peer;
  query::TreePattern pattern;
  IntensionalMode mode;
  std::function<void(FundexQueryResult)> callback;

  double start_time = 0.0;
  std::vector<PostingList> streams;
  size_t pending = 0;
  FundexQueryResult result;
  bool rev_phase_started = false;

  void FetchLists() {
    auto self = shared_from_this();
    streams.resize(pattern.size());
    pending = pattern.size();
    const bool wants_anyword =
        mode == IntensionalMode::kFundexRepresentative;
    for (size_t node = 0; node < pattern.size(); ++node) {
      peer->Get(pattern.node(node).TermKey(),
                [self, node](dht::GetResult got) {
                  self->result.posting_bytes +=
                      index::codec::RawBytes(got.postings);
                  self->streams[node] = std::move(got.postings);
                  if (--self->pending == 0) self->AfterLists();
                });
    }
    if (wants_anyword) {
      pending++;
      peer->Get(AnyWordKey(), [self](dht::GetResult got) {
        self->result.posting_bytes += index::codec::RawBytes(got.postings);
        self->anyword = std::move(got.postings);
        if (--self->pending == 0) self->AfterLists();
      });
    }
  }

  PostingList anyword;

  void AfterLists() {
    if (mode == IntensionalMode::kFundexSimple) {
      StartRevPhase();
      return;
    }
    if (mode == IntensionalMode::kFundexRepresentative) {
      for (size_t node = 0; node < pattern.size(); ++node) {
        if (pattern.node(node).kind != query::NodeKind::kWord) continue;
        streams[node].insert(streams[node].end(), anyword.begin(),
                             anyword.end());
      }
    }
    FinishJoin();
  }

  void StartRevPhase() {
    // Map functional matches (virtual documents) back through Rev to the
    // citing elements, per word node.
    rev_phase_started = true;
    auto self = shared_from_this();
    pending = 1;  // guard
    for (size_t node = 0; node < pattern.size(); ++node) {
      if (pattern.node(node).kind != query::NodeKind::kWord) continue;
      PostingList extensional;
      std::set<DocSeq> fids;
      for (const Posting& p : streams[node]) {
        if (IsFunctionalDoc(p)) {
          fids.insert(p.doc);
        } else {
          extensional.push_back(p);
        }
      }
      streams[node] = std::move(extensional);
      for (DocSeq fid : fids) {
        pending++;
        result.rev_lookups++;
        FX().rev_lookups->Increment();
        peer->Get(RevKey(fid), [self, node](dht::GetResult got) {
          self->result.posting_bytes +=
              index::codec::RawBytes(got.postings);
          PostingList& stream = self->streams[node];
          stream.insert(stream.end(), got.postings.begin(),
                        got.postings.end());
          if (--self->pending == 0) self->FinishJoin();
        });
      }
    }
    if (--pending == 0) FinishJoin();
  }

  void FinishJoin() {
    // The completion join: re-join extensional postings with the Rev-mapped
    // citing elements (a no-op mapping for the extensional mode).
    FX().completion_joins->Increment();
    obs::Tracer::Default().Event("fundex.completion_join");
    query::TwigJoin join(pattern);
    for (size_t node = 0; node < pattern.size(); ++node) {
      std::sort(streams[node].begin(), streams[node].end());
      streams[node].erase(
          std::unique(streams[node].begin(), streams[node].end()),
          streams[node].end());
      join.Append(node, streams[node]);
      join.Close(node);
    }
    join.Advance();
    result.answers = join.answers();
    result.matched_docs = join.matched_docs();
    result.response_time = peer->network()->Now() - start_time;
    if (callback) callback(std::move(result));
  }
};

}  // namespace

void RunFundexQuery(dht::DhtPeer* peer, const query::TreePattern& pattern,
                    IntensionalMode mode,
                    std::function<void(FundexQueryResult)> callback) {
  auto ctx = std::make_shared<FundexQueryContext>();
  ctx->peer = peer;
  ctx->pattern = pattern;
  ctx->mode = mode;
  ctx->callback = std::move(callback);
  ctx->start_time = peer->network()->Now();
  ctx->FetchLists();
}

}  // namespace kadop::fundex
