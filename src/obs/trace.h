#ifndef KADOP_OBS_TRACE_H_
#define KADOP_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace kadop::obs {

using SpanId = uint64_t;  // 0 is "no span" (tracing disabled or no parent).

// Causal context carried across asynchronous boundaries: scheduler events
// capture it at schedule time, and `sim::Message` carries it on the wire so
// work done on a *remote* peer parents to the span that caused the send.
// `trace_id` groups all spans of one logical operation (one query); ids are
// allocated from a deterministic sequence counter, never wall clock.
struct TraceContext {
  uint64_t trace_id = 0;
  SpanId parent_span = 0;
  uint32_t node = 0;  // peer currently executing (0 until first delivery).

  bool active() const { return trace_id != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

// The process-wide "current" context. The DES is single-threaded, so a
// plain global is safe; the scheduler saves/restores it around every event
// callback, which propagates causality through timeouts, disk completions
// and message deliveries without threading a parameter through every layer.
const TraceContext& CurrentTraceContext();
void SetCurrentTraceContext(const TraceContext& ctx);

// RAII save/set/restore of the current context.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx)
      : saved_(CurrentTraceContext()) {
    SetCurrentTraceContext(ctx);
  }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext() { SetCurrentTraceContext(saved_); }

 private:
  TraceContext saved_;
};

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;
  uint64_t trace = 0;  // 0 for spans recorded outside any trace.
  uint32_t node = 0;   // peer the span ran on.
  std::string name;
  double start = 0;
  double end = -1;  // -1 while the span is still open (or for point events).
  bool is_event = false;
  std::vector<std::pair<std::string, std::string>> attrs;
};

// Span tracer stamped from the simulator's *virtual* clock.
//
// `KadopNet` installs its `Scheduler::Now` as the clock for the duration of
// the net's lifetime, so every timestamp is deterministic virtual time —
// never wall clock. Two identical seeded runs therefore produce
// byte-identical DumpText()/DumpJson() output.
//
// Tracing is off by default; when disabled, Begin() returns 0 and every
// operation is a cheap early-out, so instrumentation can stay unconditional.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Default();

  void SetEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Installs the virtual clock. `owner` tags the installer so a nested or
  // stale owner cannot clear someone else's clock (multiple KadopNets may
  // coexist in one process; last installer wins).
  void SetClock(std::function<double()> now, const void* owner);
  void ClearClock(const void* owner);

  // Opens a span; returns 0 (a universal no-op id) when disabled. When
  // `parent` is 0 the span inherits trace/parent/node from the current
  // TraceContext, so remote-side instrumentation needs no plumbing; an
  // explicit parent inherits that span's trace and the current node.
  SpanId Begin(std::string_view name, SpanId parent = 0);
  // Opens a *root* span with a fresh trace id from the deterministic
  // sequence counter. `node` is the peer originating the trace.
  SpanId BeginRoot(std::string_view name, uint32_t node = 0);
  void End(SpanId id);
  void Annotate(SpanId id, std::string_view key, std::string value);
  // Records a zero-duration point event (context-inheriting like Begin).
  void Event(std::string_view name, SpanId parent = 0);

  // Context whose children parent to `id` (identity when id is unknown/0,
  // so `ScopedTraceContext scope(tracer.ContextFor(id))` is a safe no-op
  // with tracing disabled).
  TraceContext ContextFor(SpanId id) const;

  void Clear();

  const std::vector<SpanRecord>& spans() const { return spans_; }
  uint64_t dropped() const { return dropped_; }
  // Spans begun but not yet ended (leak detector; events never count).
  size_t OpenSpans() const;
  // Bounds memory: once `cap` records exist, new Begin/Event calls are
  // counted in dropped() instead of recorded.
  void SetCapacity(size_t cap) { capacity_ = cap; }

  std::string DumpText() const;
  std::string DumpJson() const;

 private:
  double NowOrZero() const { return clock_ ? clock_() : 0.0; }
  SpanRecord* Find(SpanId id);
  const SpanRecord* Find(SpanId id) const;
  void CountDropped();

  bool enabled_ = false;
  std::function<double()> clock_;
  const void* clock_owner_ = nullptr;
  SpanId next_id_ = 1;
  uint64_t next_trace_id_ = 1;
  size_t capacity_ = 1u << 20;
  uint64_t dropped_ = 0;
  std::vector<SpanRecord> spans_;           // in Begin() order.
  std::unordered_map<SpanId, size_t> index_;  // id -> position in spans_.
};

}  // namespace kadop::obs

#endif  // KADOP_OBS_TRACE_H_
