#ifndef KADOP_OBS_METRICS_H_
#define KADOP_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace kadop::obs {

// Process-wide metrics registry.
//
// Design constraints (see docs/observability.md):
//  - Hot-path cheap: a Counter increment is a plain 64-bit add on a pointer
//    resolved once. Callers cache `Counter*` handles; no lookup, no locking
//    (the simulator is single-threaded by construction).
//  - Deterministic: iteration order is the metric name's lexicographic order
//    (std::map), so snapshots and dumps are byte-for-byte reproducible.
//  - Stable handles: registering never invalidates previously returned
//    pointers (node-based map), and Reset() zeroes values in place.

class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  friend class MetricRegistry;
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  friend class MetricRegistry;
  double value_ = 0;
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds; one
// implicit overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // counts().size() == bounds().size() + 1; the last entry is the overflow.
  const std::vector<uint64_t>& counts() const { return counts_; }
  // Exact-rank percentile; see HistogramSnapshot::Percentile.
  double Percentile(double q) const;

 private:
  friend class MetricRegistry;
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0;
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0;

  // Exact-rank percentile over the bucketed data: computes rank
  // ceil(q * count), walks the cumulative counts, and returns the upper
  // bound of the bucket holding that rank (the last finite bound for the
  // overflow bucket). Monotone in q by construction — p50 <= p99 <= p999
  // for any bucket layout. Returns 0 when the histogram is empty.
  double Percentile(double q) const;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

// Point-in-time copy of every registered metric, ordered by name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Returns this snapshot minus `base`: counters and histogram counts
  // subtract (metrics absent from `base` count from zero); gauges keep their
  // current value (a gauge is a level, not a rate).
  MetricsSnapshot DiffSince(const MetricsSnapshot& base) const;

  // Serializes as {"counters":{...},"gauges":{...},"histograms":{...}} into
  // an open writer (for embedding in KadopStats / bench reports).
  void AppendJson(JsonWriter& w) const;
  std::string ToJson() const;
  // One metric per line, `name value`, histograms expanded per bucket.
  std::string ToText() const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // The process-wide registry used by all instrumented subsystems.
  static MetricRegistry& Default();

  // Returns the metric registered under `name`, creating it on first use.
  // Returned pointers remain valid for the registry's lifetime (across
  // Reset()). A name registered as one kind must not be requested as
  // another.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  // `bounds` must be ascending; it is fixed by the first registration and
  // ignored on later lookups of the same name.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;
  // Zeroes every value in place; registrations and handles survive.
  void Reset();

  size_t MetricCount() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Shared bucket recipes so related metrics stay comparable.
// Virtual-time latencies in seconds (queries complete in ms..minutes).
std::vector<double> LatencyBuckets();
// Small cardinalities: DHT hop counts, DPP fan-out.
std::vector<double> CountBuckets();
// Log-spaced latency buckets (4 per decade, 100µs..1000s): fine enough for
// meaningful p50/p99/p999 reads from bucket upper bounds across the full
// dynamic range a saturating serving run produces.
std::vector<double> LogLatencyBuckets();

// Windowed time-series view over a registry: each Advance() closes a window
// at virtual time `end_time` and records the metric delta accumulated since
// the previous window boundary. The serving harness uses one window per
// offered-QPS step; anything consuming per-interval rates (dashboards,
// capacity models) reads `windows()`.
class WindowedSnapshots {
 public:
  explicit WindowedSnapshots(const MetricRegistry& registry);

  struct Window {
    double end_time = 0;
    MetricsSnapshot delta;
  };

  // Closes the current window at `end_time`; returns the recorded window.
  const Window& Advance(double end_time);
  const std::vector<Window>& windows() const { return windows_; }

 private:
  const MetricRegistry& registry_;
  MetricsSnapshot previous_;
  std::vector<Window> windows_;
};

}  // namespace kadop::obs

#endif  // KADOP_OBS_METRICS_H_
