#ifndef KADOP_OBS_JSON_H_
#define KADOP_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kadop::obs {

// Minimal streaming JSON writer with deterministic output: callers control
// key order, and doubles are formatted with a fixed printf recipe so the same
// values always serialize to the same bytes. No external dependencies.
//
// Usage:
//   JsonWriter w;
//   w.BeginObject().Key("name").Value("kadop").Key("n").Value(uint64_t{3});
//   w.EndObject();
//   std::string out = std::move(w).str();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Null();

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

  // Formats a double exactly as Value(double) would (shared with tests and
  // text dumps so every surface prints numbers identically).
  static std::string FormatDouble(double v);

 private:
  void BeforeValue();
  void AppendEscaped(std::string_view s);

  std::string out_;
  // One frame per open object/array: true once the first element is emitted.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace kadop::obs

#endif  // KADOP_OBS_JSON_H_
