#include "obs/buildinfo.h"

#include "obs/profile_clock.h"

namespace kadop::obs {

namespace {

constexpr bool kAsan =
#if defined(__SANITIZE_ADDRESS__)
    true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

constexpr bool kTsan =
#if defined(__SANITIZE_THREAD__)
    true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

}  // namespace

BuildInfo CurrentBuildInfo() {
  BuildInfo info;
  info.asan = kAsan;
  info.tsan = kTsan;
  info.profiling_compiled = ProfilingTimersCompiledIn();
  info.profiling_enabled = WallClockProfilingEnabled();
  return info;
}

std::string BuildInfoString() {
  const BuildInfo info = CurrentBuildInfo();
  std::string sanitizers;
  if (info.asan) sanitizers += "asan,";
  if (info.tsan) sanitizers += "tsan,";
  if (sanitizers.empty()) {
    sanitizers = "none";
  } else {
    sanitizers.pop_back();
  }
  std::string timers = info.profiling_compiled
                           ? (info.profiling_enabled ? "compiled-in(on)"
                                                     : "compiled-in(off)")
                           : "compiled-out";
  return "sanitizers=" + sanitizers + " profile_timers=" + timers;
}

}  // namespace kadop::obs
