#ifndef KADOP_OBS_PROFILE_CLOCK_H_
#define KADOP_OBS_PROFILE_CLOCK_H_

#include <cstdint>

namespace kadop::obs {

// The only sanctioned wall-clock escape in the library.
//
// Everything observable in a seeded run — virtual timestamps, traffic
// counters, metric snapshots — must be a pure function of the seeds, so
// reading a real clock anywhere in `src/` is a determinism bug (analyzer
// rule KDP011). Real-time profiling is still occasionally wanted (codec
// encode/decode throughput in the micro benches), so this shim gates it:
//
//  - Compiled out entirely when KADOP_PROFILE_TIMERS=0 (CMake option);
//    ProfileNowNs() is then a constant 0.
//  - Off by default at runtime even when compiled in. ProfileNowNs()
//    returns 0 until SetWallClockProfiling(true), so counters fed from it
//    stay exactly zero in deterministic runs and same-seed metric
//    snapshots remain byte-identical.
//
// Benches that intentionally measure wall time call
// SetWallClockProfiling(true) up front; nothing under src/ ever does.

/// True when the binary was built with KADOP_PROFILE_TIMERS (the chrono
/// read exists in the object code at all).
bool ProfilingTimersCompiledIn();

/// Runtime opt-in for nondeterministic wall-clock profiling. No effect
/// when the timers are compiled out.
void SetWallClockProfiling(bool on);
bool WallClockProfilingEnabled();

/// Monotonic wall-clock nanoseconds, or 0 unless profiling is both
/// compiled in and enabled. Callers must treat 0 as "no measurement":
/// deltas of two ProfileNowNs() reads are then 0 and feed counters
/// without perturbing them.
uint64_t ProfileNowNs();

}  // namespace kadop::obs

#endif  // KADOP_OBS_PROFILE_CLOCK_H_
