#ifndef KADOP_OBS_BUILDINFO_H_
#define KADOP_OBS_BUILDINFO_H_

#include <string>

namespace kadop::obs {

// Build provenance for result artifacts. Bench JSON and the shell report
// this so a number can always be traced back to *how* the binary was
// built: sanitized binaries are slower (their timings are not comparable)
// and wall-clock profiling timers are nondeterministic by definition, so
// any artifact produced with them enabled must say so.
struct BuildInfo {
  bool asan = false;              // AddressSanitizer compiled in.
  bool tsan = false;              // ThreadSanitizer compiled in.
  bool profiling_compiled = false;  // KADOP_PROFILE_TIMERS build option.
  bool profiling_enabled = false;   // runtime SetWallClockProfiling state.
};

/// The running binary's build info (profiling_enabled sampled at call
/// time).
BuildInfo CurrentBuildInfo();

/// One-line form, e.g.
/// "sanitizers=none profile_timers=compiled-in(off)".
std::string BuildInfoString();

}  // namespace kadop::obs

#endif  // KADOP_OBS_BUILDINFO_H_
