#include "obs/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace kadop::obs {

std::string JsonWriter::FormatDouble(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  // Integral values (the common case for virtual timestamps and byte totals)
  // print without a fraction; everything else round-trips via %.17g.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  AppendEscaped(key);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  BeforeValue();
  AppendEscaped(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  out_ += FormatDouble(v);
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace kadop::obs
