#ifndef KADOP_OBS_TRACE_ANALYSIS_H_
#define KADOP_OBS_TRACE_ANALYSIS_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace kadop::obs {

// Post-hoc analysis over a Tracer buffer: per-query span trees, critical
// paths, phase breakdowns and Chrome trace_event export. Everything here is
// a pure function of the recorded spans, so two same-seed runs produce
// byte-identical reports.

// The connected span tree under one root span.
struct TraceTree {
  const SpanRecord* root = nullptr;
  // Root plus every span of the root's trace reachable from it, in Begin()
  // order (deterministic).
  std::vector<const SpanRecord*> spans;
  // Spans sharing the root's trace id whose parent chain does NOT reach the
  // root (0 means the trace is a single connected tree).
  size_t disconnected = 0;

  // Distinct peers the tree's spans executed on.
  size_t PeerCount() const;
};

// Root spans (non-event, parent == 0, trace != 0) in Begin() order — one
// per traced query.
std::vector<SpanId> TraceRoots(const Tracer& tracer);

TraceTree BuildTraceTree(const Tracer& tracer, SpanId root);

// Dominant chain through the tree: starting at the root, repeatedly descend
// into the child span that ends last (ties broken by span id). This is the
// chain of work that determined the response time.
struct CriticalPathStep {
  SpanId id = 0;
  std::string name;
  uint32_t node = 0;
  double start = 0;
  double end = 0;
};
std::vector<CriticalPathStep> CriticalPath(const TraceTree& tree);

// Classifies a span name into one of the fixed phases:
// route / fetch / decode / join / reply / other.
std::string_view PhaseForSpanName(std::string_view name);

// Partitions the root span's [start, end] interval: each instant is
// attributed to the phase of the *deepest* span covering it (ties broken by
// span id), so the per-phase totals sum to the root's duration exactly.
struct PhaseBreakdown {
  // (phase, seconds) in the fixed order route, fetch, decode, join, reply,
  // other. Present even when zero.
  std::vector<std::pair<std::string, double>> phases;
  double total = 0;  // root duration == sum of phase seconds.
};
PhaseBreakdown ComputePhaseBreakdown(const TraceTree& tree);

// Human-readable per-query report: tree size, peer count, critical path and
// phase breakdown.
std::string PhaseReportText(const Tracer& tracer, SpanId root);

// Chrome trace_event JSON ("X" complete events, "i" instants, "M" process
// names; ts/dur in microseconds of virtual time; pid = peer, tid = trace
// id). Load in chrome://tracing or Perfetto.
std::string ChromeTraceJson(const Tracer& tracer);

}  // namespace kadop::obs

#endif  // KADOP_OBS_TRACE_ANALYSIS_H_
