#include "obs/trace.h"

#include "obs/json.h"
#include "obs/metrics.h"

namespace kadop::obs {

namespace {
TraceContext& MutableCurrentContext() {
  static TraceContext ctx;
  return ctx;
}
}  // namespace

const TraceContext& CurrentTraceContext() { return MutableCurrentContext(); }

void SetCurrentTraceContext(const TraceContext& ctx) {
  MutableCurrentContext() = ctx;
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetClock(std::function<double()> now, const void* owner) {
  clock_ = std::move(now);
  clock_owner_ = owner;
}

void Tracer::ClearClock(const void* owner) {
  if (clock_owner_ != owner) return;  // someone else installed a newer clock
  clock_ = nullptr;
  clock_owner_ = nullptr;
}

SpanRecord* Tracer::Find(SpanId id) {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

const SpanRecord* Tracer::Find(SpanId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

void Tracer::CountDropped() {
  dropped_++;
  // Mirrored into the registry so overviews (shell `stats`, bench metric
  // deltas) surface truncated traces without consulting the tracer.
  static Counter* dropped_spans =
      MetricRegistry::Default().GetCounter("trace.dropped_spans");
  dropped_spans->Increment();
}

SpanId Tracer::Begin(std::string_view name, SpanId parent) {
  if (!enabled_) return 0;
  if (spans_.size() >= capacity_) {
    CountDropped();
    return 0;
  }
  SpanRecord rec;
  rec.id = next_id_++;
  const TraceContext& ctx = CurrentTraceContext();
  if (parent == 0) {
    rec.parent = ctx.parent_span;
    rec.trace = ctx.trace_id;
    rec.node = ctx.node;
  } else {
    rec.parent = parent;
    const SpanRecord* prec = Find(parent);
    rec.trace = prec ? prec->trace : ctx.trace_id;
    rec.node = ctx.active() ? ctx.node : (prec ? prec->node : 0);
  }
  rec.name.assign(name);
  rec.start = NowOrZero();
  index_[rec.id] = spans_.size();
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

SpanId Tracer::BeginRoot(std::string_view name, uint32_t node) {
  if (!enabled_) return 0;
  if (spans_.size() >= capacity_) {
    CountDropped();
    return 0;
  }
  SpanRecord rec;
  rec.id = next_id_++;
  rec.trace = next_trace_id_++;
  rec.node = node;
  rec.name.assign(name);
  rec.start = NowOrZero();
  index_[rec.id] = spans_.size();
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void Tracer::End(SpanId id) {
  if (id == 0) return;
  if (SpanRecord* rec = Find(id)) rec->end = NowOrZero();
}

void Tracer::Annotate(SpanId id, std::string_view key, std::string value) {
  if (id == 0) return;
  if (SpanRecord* rec = Find(id))
    rec->attrs.emplace_back(std::string(key), std::move(value));
}

void Tracer::Event(std::string_view name, SpanId parent) {
  if (!enabled_) return;
  if (spans_.size() >= capacity_) {
    CountDropped();
    return;
  }
  SpanRecord rec;
  rec.id = next_id_++;
  const TraceContext& ctx = CurrentTraceContext();
  if (parent == 0) {
    rec.parent = ctx.parent_span;
    rec.trace = ctx.trace_id;
    rec.node = ctx.node;
  } else {
    rec.parent = parent;
    const SpanRecord* prec = Find(parent);
    rec.trace = prec ? prec->trace : ctx.trace_id;
    rec.node = ctx.active() ? ctx.node : (prec ? prec->node : 0);
  }
  rec.name.assign(name);
  rec.start = NowOrZero();
  rec.end = rec.start;
  rec.is_event = true;
  index_[rec.id] = spans_.size();
  spans_.push_back(std::move(rec));
}

TraceContext Tracer::ContextFor(SpanId id) const {
  if (id != 0) {
    if (const SpanRecord* rec = Find(id)) {
      TraceContext ctx;
      ctx.trace_id = rec->trace;
      ctx.parent_span = id;
      ctx.node = rec->node;
      return ctx;
    }
  }
  return CurrentTraceContext();
}

size_t Tracer::OpenSpans() const {
  size_t open = 0;
  for (const SpanRecord& s : spans_) {
    if (!s.is_event && s.end < s.start) ++open;
  }
  return open;
}

void Tracer::Clear() {
  spans_.clear();
  index_.clear();
  next_id_ = 1;
  next_trace_id_ = 1;
  dropped_ = 0;
}

std::string Tracer::DumpText() const {
  std::string out;
  for (const SpanRecord& s : spans_) {
    out += s.is_event ? "event " : "span  ";
    out += '#' + std::to_string(s.id);
    if (s.parent != 0) out += " <#" + std::to_string(s.parent);
    out += ' ';
    out += s.name;
    if (s.trace != 0) out += " trace=" + std::to_string(s.trace);
    if (s.node != 0) out += " node=" + std::to_string(s.node);
    out += " t=" + JsonWriter::FormatDouble(s.start);
    if (!s.is_event) {
      if (s.end >= s.start) {
        out += " dur=" + JsonWriter::FormatDouble(s.end - s.start);
      } else {
        out += " open";
      }
    }
    for (const auto& [key, value] : s.attrs) {
      out += ' ' + key + '=' + value;
    }
    out += '\n';
  }
  if (dropped_ > 0) {
    out += "dropped " + std::to_string(dropped_) + "\n";
  }
  return out;
}

std::string Tracer::DumpJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("spans").BeginArray();
  for (const SpanRecord& s : spans_) {
    w.BeginObject();
    w.Key("id").Value(s.id);
    if (s.parent != 0) w.Key("parent").Value(s.parent);
    if (s.trace != 0) w.Key("trace").Value(s.trace);
    if (s.node != 0) w.Key("node").Value(static_cast<uint64_t>(s.node));
    w.Key("name").Value(s.name);
    w.Key("start").Value(s.start);
    if (s.is_event) {
      w.Key("event").Value(true);
    } else if (s.end >= s.start) {
      w.Key("end").Value(s.end);
    }
    if (!s.attrs.empty()) {
      w.Key("attrs").BeginObject();
      for (const auto& [key, value] : s.attrs) w.Key(key).Value(value);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("dropped").Value(dropped_);
  w.EndObject();
  return std::move(w).str();
}

}  // namespace kadop::obs
