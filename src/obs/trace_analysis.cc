#include "obs/trace_analysis.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "obs/json.h"

namespace kadop::obs {

namespace {

constexpr std::string_view kPhaseOrder[] = {"route",  "fetch", "decode",
                                            "join",   "reply", "other"};

bool NameHasPrefix(std::string_view name, std::string_view prefix) {
  return name.size() >= prefix.size() &&
         name.substr(0, prefix.size()) == prefix;
}

}  // namespace

std::string_view PhaseForSpanName(std::string_view name) {
  if (NameHasPrefix(name, "query.route") || NameHasPrefix(name, "dpp.dir") ||
      NameHasPrefix(name, "dht.route")) {
    return "route";
  }
  if (NameHasPrefix(name, "query.fetch") || NameHasPrefix(name, "dht.get")) {
    return "fetch";
  }
  if (NameHasPrefix(name, "query.decode") || NameHasPrefix(name, "codec.")) {
    return "decode";
  }
  if (NameHasPrefix(name, "query.join") || NameHasPrefix(name, "join.") ||
      NameHasPrefix(name, "reducer.")) {
    return "join";
  }
  if (NameHasPrefix(name, "query.reply") || NameHasPrefix(name, "dht.reply")) {
    return "reply";
  }
  return "other";
}

size_t TraceTree::PeerCount() const {
  std::set<uint32_t> nodes;
  for (const SpanRecord* s : spans) nodes.insert(s->node);
  return nodes.size();
}

std::vector<SpanId> TraceRoots(const Tracer& tracer) {
  std::vector<SpanId> roots;
  for (const SpanRecord& s : tracer.spans()) {
    if (!s.is_event && s.parent == 0 && s.trace != 0) roots.push_back(s.id);
  }
  return roots;
}

TraceTree BuildTraceTree(const Tracer& tracer, SpanId root) {
  TraceTree tree;
  std::unordered_map<SpanId, const SpanRecord*> by_id;
  for (const SpanRecord& s : tracer.spans()) by_id[s.id] = &s;
  auto it = by_id.find(root);
  if (it == by_id.end()) return tree;
  tree.root = it->second;

  // A span is in the tree iff its parent chain reaches the root. Records are
  // stored in Begin() order, so a span's parent always precedes it and one
  // forward pass settles reachability.
  std::set<SpanId> reachable = {root};
  tree.spans.push_back(tree.root);
  for (const SpanRecord& s : tracer.spans()) {
    if (s.trace != tree.root->trace || s.id == root) continue;
    if (s.parent != 0 && reachable.count(s.parent)) {
      reachable.insert(s.id);
      tree.spans.push_back(&s);
    } else {
      tree.disconnected++;
    }
  }
  return tree;
}

std::vector<CriticalPathStep> CriticalPath(const TraceTree& tree) {
  std::vector<CriticalPathStep> path;
  if (tree.root == nullptr) return path;
  std::map<SpanId, std::vector<const SpanRecord*>> children;
  for (const SpanRecord* s : tree.spans) {
    if (s != tree.root) children[s->parent].push_back(s);
  }
  const SpanRecord* cur = tree.root;
  const double fallback_end = tree.root->end;
  while (cur != nullptr) {
    CriticalPathStep step;
    step.id = cur->id;
    step.name = cur->name;
    step.node = cur->node;
    step.start = cur->start;
    step.end = cur->end >= cur->start ? cur->end : fallback_end;
    path.push_back(std::move(step));
    const SpanRecord* next = nullptr;
    auto it = children.find(cur->id);
    if (it != children.end()) {
      for (const SpanRecord* c : it->second) {
        if (c->is_event) continue;
        const double c_end = c->end >= c->start ? c->end : fallback_end;
        if (next == nullptr) {
          next = c;
          continue;
        }
        const double n_end = next->end >= next->start ? next->end
                                                      : fallback_end;
        if (c_end > n_end || (c_end == n_end && c->id > next->id)) next = c;
      }
    }
    cur = next;
  }
  return path;
}

PhaseBreakdown ComputePhaseBreakdown(const TraceTree& tree) {
  PhaseBreakdown out;
  for (std::string_view phase : kPhaseOrder) {
    out.phases.emplace_back(std::string(phase), 0.0);
  }
  if (tree.root == nullptr || tree.root->end < tree.root->start) return out;
  const double lo = tree.root->start;
  const double hi = tree.root->end;
  out.total = hi - lo;

  struct Interval {
    double start, end;
    size_t depth;
    SpanId id;
    std::string_view phase;
  };
  std::unordered_map<SpanId, size_t> depth = {{tree.root->id, 0}};
  std::vector<Interval> intervals;
  std::vector<double> points = {lo, hi};
  for (const SpanRecord* s : tree.spans) {
    if (s->is_event) continue;
    size_t d = 0;
    if (s != tree.root) {
      auto pit = depth.find(s->parent);
      d = (pit == depth.end() ? 0 : pit->second) + 1;
    }
    depth[s->id] = d;
    Interval iv;
    iv.start = std::max(s->start, lo);
    iv.end = std::min(s->end >= s->start ? s->end : hi, hi);
    if (iv.end <= iv.start) continue;
    iv.depth = d;
    iv.id = s->id;
    iv.phase = s == tree.root ? std::string_view("other")
                              : PhaseForSpanName(s->name);
    intervals.push_back(iv);
    points.push_back(iv.start);
    points.push_back(iv.end);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  std::map<std::string_view, double> seconds;
  double attributed = 0;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    const double a = points[i];
    const double b = points[i + 1];
    if (b <= a || a < lo || b > hi) continue;
    const Interval* best = nullptr;
    for (const Interval& iv : intervals) {
      if (iv.start > a || iv.end < b) continue;
      if (best == nullptr || iv.depth > best->depth ||
          (iv.depth == best->depth && iv.id > best->id)) {
        best = &iv;
      }
    }
    if (best == nullptr) continue;  // only possible via FP pathology
    seconds[best->phase] += b - a;
    attributed += b - a;
  }
  for (auto& [phase, value] : out.phases) {
    auto it = seconds.find(phase);
    if (it != seconds.end()) value = it->second;
  }
  // Force the exact-sum invariant: rounding residue (a few ulps of the
  // telescoped segment sum) lands in "other" so phases always total the
  // measured response time.
  out.phases.back().second += out.total - attributed;
  return out;
}

std::string PhaseReportText(const Tracer& tracer, SpanId root) {
  std::string out;
  TraceTree tree = BuildTraceTree(tracer, root);
  if (tree.root == nullptr) return "no such span\n";
  out += "trace " + std::to_string(tree.root->trace);
  out += " root #" + std::to_string(root) + " " + tree.root->name;
  out += " spans=" + std::to_string(tree.spans.size());
  out += " peers=" + std::to_string(tree.PeerCount());
  if (tree.disconnected > 0) {
    out += " disconnected=" + std::to_string(tree.disconnected);
  }
  if (tree.root->end >= tree.root->start) {
    out += " response=" +
           JsonWriter::FormatDouble(tree.root->end - tree.root->start);
  }
  out += '\n';
  out += "critical path:\n";
  for (const CriticalPathStep& step : CriticalPath(tree)) {
    out += "  #" + std::to_string(step.id) + " " + step.name;
    out += " node=" + std::to_string(step.node);
    out += " t=" + JsonWriter::FormatDouble(step.start);
    out += " dur=" + JsonWriter::FormatDouble(step.end - step.start);
    out += '\n';
  }
  out += "phases:\n";
  PhaseBreakdown breakdown = ComputePhaseBreakdown(tree);
  for (const auto& [phase, value] : breakdown.phases) {
    out += "  " + phase + " " + JsonWriter::FormatDouble(value) + '\n';
  }
  out += "  total " + JsonWriter::FormatDouble(breakdown.total) + '\n';
  return out;
}

std::string ChromeTraceJson(const Tracer& tracer) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  std::set<uint32_t> nodes;
  for (const SpanRecord& s : tracer.spans()) nodes.insert(s.node);
  for (uint32_t node : nodes) {
    w.BeginObject();
    w.Key("name").Value("process_name");
    w.Key("ph").Value("M");
    w.Key("pid").Value(static_cast<uint64_t>(node));
    w.Key("tid").Value(static_cast<uint64_t>(0));
    w.Key("args").BeginObject();
    w.Key("name").Value("peer " + std::to_string(node));
    w.EndObject();
    w.EndObject();
  }
  for (const SpanRecord& s : tracer.spans()) {
    w.BeginObject();
    w.Key("name").Value(s.name);
    w.Key("ph").Value(s.is_event ? "i" : "X");
    w.Key("ts").Value(s.start * 1e6);
    if (!s.is_event) {
      w.Key("dur").Value(s.end >= s.start ? (s.end - s.start) * 1e6 : 0.0);
    }
    w.Key("pid").Value(static_cast<uint64_t>(s.node));
    w.Key("tid").Value(s.trace);
    if (s.is_event) w.Key("s").Value("t");
    w.Key("args").BeginObject();
    w.Key("span").Value(s.id);
    if (s.parent != 0) w.Key("parent").Value(s.parent);
    for (const auto& [key, value] : s.attrs) w.Key(key).Value(value);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").Value("ms");
  w.EndObject();
  return std::move(w).str();
}

}  // namespace kadop::obs
