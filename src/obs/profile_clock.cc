#include "obs/profile_clock.h"

#if KADOP_PROFILE_TIMERS
// KDP-ALLOW(KDP011): this file IS the timing shim; the header is only
// pulled in when profiling timers are compiled in at all.
#include <chrono>
#endif

namespace kadop::obs {

namespace {
bool g_wallclock_profiling = false;
}  // namespace

bool ProfilingTimersCompiledIn() {
#if KADOP_PROFILE_TIMERS
  return true;
#else
  return false;
#endif
}

void SetWallClockProfiling(bool on) { g_wallclock_profiling = on; }

bool WallClockProfilingEnabled() {
  return ProfilingTimersCompiledIn() && g_wallclock_profiling;
}

uint64_t ProfileNowNs() {
#if KADOP_PROFILE_TIMERS
  if (g_wallclock_profiling) {
    // KDP-ALLOW(KDP011): this is the one sanctioned wall-clock read; it is
    // compile- and runtime-gated so deterministic runs never reach it.
    const auto now = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count());
  }
#endif
  return 0;
}

}  // namespace kadop::obs
