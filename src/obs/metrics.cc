#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace kadop::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  KADOP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i]++;
  count_++;
  sum_ += v;
}

namespace {
// Shared by Histogram and HistogramSnapshot: exact rank ceil(q*count) over
// the cumulative bucket counts; the answer is the upper bound of the bucket
// holding that rank. The overflow bucket has no finite bound, so it reports
// the last finite bound (the floor of any value that landed there).
double BucketPercentile(const std::vector<double>& bounds,
                        const std::vector<uint64_t>& counts, uint64_t count,
                        double q) {
  if (count == 0 || counts.empty()) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      if (i < bounds.size()) return bounds[i];
      return bounds.empty() ? 0 : bounds.back();
    }
  }
  return bounds.empty() ? 0 : bounds.back();
}
}  // namespace

double Histogram::Percentile(double q) const {
  return BucketPercentile(bounds_, counts_, count_, q);
}

double HistogramSnapshot::Percentile(double q) const {
  return BucketPercentile(bounds, counts, count, q);
}

MetricsSnapshot MetricsSnapshot::DiffSince(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = base.counters.find(name);
    out.counters[name] = value - (it == base.counters.end() ? 0 : it->second);
  }
  out.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    HistogramSnapshot d = h;
    auto it = base.histograms.find(name);
    if (it != base.histograms.end() && it->second.bounds == h.bounds) {
      for (size_t i = 0; i < d.counts.size(); ++i)
        d.counts[i] -= it->second.counts[i];
      d.count -= it->second.count;
      d.sum -= it->second.sum;
    }
    out.histograms[name] = std::move(d);
  }
  return out;
}

void MetricsSnapshot::AppendJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) w.Key(name).Value(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) w.Key(name).Value(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Value(h.count);
    w.Key("sum").Value(h.sum);
    w.Key("bounds").BeginArray();
    for (double b : h.bounds) w.Value(b);
    w.EndArray();
    w.Key("counts").BeginArray();
    for (uint64_t c : h.counts) w.Value(c);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  AppendJson(w);
  return std::move(w).str();
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, value] : gauges) {
    out += name;
    out += ' ';
    out += JsonWriter::FormatDouble(value);
    out += '\n';
  }
  for (const auto& [name, h] : histograms) {
    out += name;
    out += " count=" + std::to_string(h.count);
    out += " sum=" + JsonWriter::FormatDouble(h.sum);
    for (size_t i = 0; i < h.counts.size(); ++i) {
      out += ' ';
      out += i < h.bounds.size() ? "le" + JsonWriter::FormatDouble(h.bounds[i])
                                 : std::string("inf");
      out += ':';
      out += std::to_string(h.counts[i]);
    }
    out += '\n';
  }
  return out;
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  KADOP_CHECK(!name.empty(), "metric name must be non-empty");
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), Counter{}).first;
  return &it->second;
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  KADOP_CHECK(!name.empty(), "metric name must be non-empty");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.emplace(std::string(name), Gauge{}).first;
  return &it->second;
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        std::vector<double> bounds) {
  KADOP_CHECK(!name.empty(), "metric name must be non-empty");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
             .first;
  }
  return &it->second;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value_;
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value_;
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] =
        HistogramSnapshot{h.bounds(), h.counts(), h.count(), h.sum()};
  }
  return snap;
}

void MetricRegistry::Reset() {
  for (auto& [name, c] : counters_) c.value_ = 0;
  for (auto& [name, g] : gauges_) g.value_ = 0;
  for (auto& [name, h] : histograms_) {
    std::fill(h.counts_.begin(), h.counts_.end(), 0);
    h.count_ = 0;
    h.sum_ = 0;
  }
}

std::vector<double> LatencyBuckets() {
  return {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500};
}

std::vector<double> CountBuckets() {
  return {0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
}

std::vector<double> LogLatencyBuckets() {
  // Four buckets per decade (x1, x1.8, x3.2, x5.6 ~ equal log spacing),
  // 100µs through 1000s. Literal multipliers, not pow(), so the bounds are
  // bit-identical everywhere.
  static const double kPerDecade[] = {1.0, 1.8, 3.2, 5.6};
  static const double kDecades[] = {1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1000};
  std::vector<double> bounds;
  for (double decade : kDecades) {
    for (double m : kPerDecade) bounds.push_back(decade * m);
  }
  return bounds;
}

WindowedSnapshots::WindowedSnapshots(const MetricRegistry& registry)
    : registry_(registry), previous_(registry.Snapshot()) {}

const WindowedSnapshots::Window& WindowedSnapshots::Advance(double end_time) {
  MetricsSnapshot current = registry_.Snapshot();
  Window w;
  w.end_time = end_time;
  w.delta = current.DiffSince(previous_);
  previous_ = std::move(current);
  windows_.push_back(std::move(w));
  return windows_.back();
}

}  // namespace kadop::obs
