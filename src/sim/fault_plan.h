#ifndef KADOP_SIM_FAULT_PLAN_H_
#define KADOP_SIM_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "sim/message.h"
#include "sim/scheduler.h"

namespace kadop::sim {

/// Knobs for seeded link-level fault injection. All probabilities are per
/// non-local message; a zeroed struct injects nothing.
struct FaultOptions {
  /// Seed for the fault RNG. Same seed + same workload -> byte-identical
  /// fault schedule (drops, dups, jitter all replay exactly).
  uint64_t seed = 1;
  /// Probability that a message is dropped in flight (uplink bytes are
  /// still charged: the sender transmitted, the network lost it).
  double drop_p = 0.0;
  /// Probability that a delivered message arrives twice.
  double dup_p = 0.0;
  /// Mean of exponentially distributed extra propagation delay, seconds.
  /// 0 disables jitter (and consumes no RNG draws).
  double jitter_mean_s = 0.0;
  /// Fixed extra delay added to every message *sent by* a slow peer,
  /// modeling inflated service latency. 0 disables.
  double slow_extra_s = 0.0;
  /// Peers subject to `slow_extra_s`.
  std::vector<NodeIndex> slow_peers;

  /// True if any link-level fault can fire.
  bool Any() const {
    return drop_p > 0 || dup_p > 0 || jitter_mean_s > 0 ||
           (slow_extra_s > 0 && !slow_peers.empty());
  }
};

/// A scheduled crash (`up == false`) or restart (`up == true`) of one peer
/// at an absolute virtual time. Executed by the embedding layer (KadopNet),
/// which also owns re-stabilizing the DHT afterwards.
struct CrashEvent {
  SimTime at = 0.0;
  NodeIndex node = 0;
  bool up = false;
};

/// The verdict for a single send.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  double extra_delay_s = 0.0;
};

/// Running tally of injected faults (also mirrored into the obs registry by
/// the network as `fault.*` counters).
struct FaultStats {
  uint64_t drops = 0;
  uint64_t dups = 0;
  uint64_t delayed = 0;
};

/// A seeded, deterministic schedule of link faults. The network consults
/// `OnSend` exactly once per non-local message, in send order; because that
/// order is itself deterministic under the virtual clock, every run with the
/// same seed and workload sees the identical fault sequence.
class FaultPlan {
 public:
  explicit FaultPlan(FaultOptions options);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Decides the fate of one message. Consumes RNG draws only for enabled
  /// fault classes, so e.g. a drop-only plan replays identically whether or
  /// not jitter was ever configured.
  FaultDecision OnSend(const Message& msg);

  const FaultOptions& options() const { return options_; }
  const FaultStats& stats() const { return stats_; }

 private:
  bool IsSlow(NodeIndex node) const;

  FaultOptions options_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace kadop::sim

#endif  // KADOP_SIM_FAULT_PLAN_H_
