#ifndef KADOP_SIM_MESSAGE_H_
#define KADOP_SIM_MESSAGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>

#include "obs/trace.h"

namespace kadop::sim {

/// Index of a node within a Network (dense, assigned at registration).
using NodeIndex = uint32_t;

/// Traffic categories for the network meter. The paper's bandwidth
/// experiments break volume down into postings vs. Bloom filters (Fig 7);
/// control traffic (routing, DPP conditions) is accounted separately.
enum class TrafficCategory : uint8_t {
  kControl = 0,      // DHT routing / lookups / acks
  kPublish = 1,      // postings shipped at indexing time
  kPosting = 2,      // posting (blocks) transferred during query eval
  kBloomFilter = 3,  // structural Bloom filters
  kQuery = 4,        // query dissemination
  kResult = 5,       // final answers shipped to the query peer
  kCategoryCount = 6,
};

/// Returns a short stable name ("control", "publish", ...).
std::string_view TrafficCategoryName(TrafficCategory c);

/// Base class for message payloads. Payloads are passed by shared pointer
/// (no real serialization: computation is real, bytes are modeled), but
/// every payload must report the size it would occupy on the wire so the
/// simulator can charge bandwidth and the traffic meter stays byte-accurate.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Serialized size in bytes, excluding the transport header.
  virtual size_t SizeBytes() const = 0;

  /// Stable payload type name for debugging.
  virtual std::string_view TypeName() const = 0;
};

using PayloadPtr = std::shared_ptr<Payload>;

/// A message in flight: source, destination, category, payload.
struct Message {
  Message() = default;
  Message(NodeIndex from, NodeIndex to, TrafficCategory category,
          PayloadPtr payload)
      : from(from), to(to), category(category), payload(std::move(payload)) {}

  NodeIndex from = 0;
  NodeIndex to = 0;
  TrafficCategory category = TrafficCategory::kControl;
  PayloadPtr payload;
  /// Causal trace context carried across the wire. `Network::Send` stamps
  /// it from the sender's current context when unset, and delivery installs
  /// it (with `node` = the receiver) around `HandleMessage`, so spans opened
  /// while serving a remote request parent to the span that sent it.
  obs::TraceContext trace;
};

}  // namespace kadop::sim

#endif  // KADOP_SIM_MESSAGE_H_
