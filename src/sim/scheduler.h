#ifndef KADOP_SIM_SCHEDULER_H_
#define KADOP_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "obs/trace.h"

namespace kadop::sim {

/// Virtual time in seconds.
using SimTime = double;

/// Handle for a scheduled event, usable with Scheduler::Cancel. The zero
/// value is never a live event, so it can mean "nothing armed".
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// A deterministic discrete-event scheduler. Events are executed in
/// (time, insertion-order) order, so runs are exactly reproducible.
///
/// All "wall-clock" measurements in the reproduction (indexing time, query
/// response time, time to first answer) are virtual times read off this
/// clock while the real data structures and algorithms execute in-process.
///
/// Each event captures the current obs::TraceContext at schedule time and
/// restores it for the duration of its callback, so causality survives every
/// asynchronous hop (timeouts, disk completions, message deliveries) without
/// any per-call-site plumbing.
class Scheduler {
 public:
  Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `when` (>= Now()).
  /// Events scheduled in the past are clamped to Now().
  EventId At(SimTime when, std::function<void()> fn);

  /// Schedules `fn` `delay` seconds from now.
  EventId After(SimTime delay, std::function<void()> fn);

  /// Cancels a pending event. A cancelled event is discarded without running
  /// and without advancing the clock or the executed-event counter, so a
  /// timeout that is armed and then cancelled before firing leaves the run's
  /// virtual end time and event count byte-identical to never arming it.
  /// Returns false for kInvalidEventId / never-issued ids. Callers must drop
  /// their handle once the event fires: cancellation is lazy, so cancelling
  /// an id that already ran pins a tombstone entry for the rest of the run.
  bool Cancel(EventId id);

  /// Runs events until the queue is empty. Returns the final virtual time.
  SimTime RunUntilIdle();

  /// Runs events with time <= `deadline`. Returns the virtual time of the
  /// last executed event (or `deadline` if the queue drained earlier).
  SimTime RunUntil(SimTime deadline);

  /// Number of events executed so far (for tests / sanity checks).
  uint64_t executed_events() const { return executed_; }

  /// True if no events are pending.
  bool Idle() const { return queue_.empty(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    obs::TraceContext ctx;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 1;  // seq doubles as EventId; 0 is reserved invalid.
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace kadop::sim

#endif  // KADOP_SIM_SCHEDULER_H_
