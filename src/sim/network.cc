#include "sim/network.h"

#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "sim/fault_plan.h"

namespace kadop::sim {

namespace {

// Registry handles resolved once; increments on the send path are plain adds.
struct NetCounters {
  obs::Counter* messages;
  obs::Counter* bytes;
  obs::Counter* dropped;

  NetCounters() {
    auto& r = obs::MetricRegistry::Default();
    messages = r.GetCounter("net.messages");
    bytes = r.GetCounter("net.bytes");
    dropped = r.GetCounter("net.dropped");
  }
};

NetCounters& Counters() {
  static NetCounters counters;
  return counters;
}

// Fault-injection counters; touched only when a FaultPlan is installed.
struct FaultInjectCounters {
  obs::Counter* injected;
  obs::Counter* drops;
  obs::Counter* dups;
  obs::Counter* delayed;

  FaultInjectCounters() {
    auto& r = obs::MetricRegistry::Default();
    injected = r.GetCounter("fault.injected");
    drops = r.GetCounter("fault.drops");
    dups = r.GetCounter("fault.dups");
    delayed = r.GetCounter("fault.delayed");
  }
};

FaultInjectCounters& FaultCounters() {
  static FaultInjectCounters counters;
  return counters;
}

struct TypeCounters {
  obs::Counter* messages;
  obs::Counter* bytes;
};

// Per-payload-type counters, keyed by the payload's TypeName(). TypeName()
// returns a stable static literal, so the string_view key never dangles.
TypeCounters& CountersForType(std::string_view type) {
  static std::unordered_map<std::string_view, TypeCounters>* cache =
      new std::unordered_map<std::string_view, TypeCounters>();
  auto it = cache->find(type);
  if (it == cache->end()) {
    auto& r = obs::MetricRegistry::Default();
    const std::string base = "net.msg." + std::string(type);
    it = cache
             ->emplace(type, TypeCounters{r.GetCounter(base + ".messages"),
                                          r.GetCounter(base + ".bytes")})
             .first;
  }
  return it->second;
}

}  // namespace

std::string_view TrafficCategoryName(TrafficCategory c) {
  switch (c) {
    case TrafficCategory::kControl:
      return "control";
    case TrafficCategory::kPublish:
      return "publish";
    case TrafficCategory::kPosting:
      return "posting";
    case TrafficCategory::kBloomFilter:
      return "bloom";
    case TrafficCategory::kQuery:
      return "query";
    case TrafficCategory::kResult:
      return "result";
    case TrafficCategory::kCategoryCount:
      break;
  }
  return "unknown";
}

Network::Network(Scheduler* scheduler, NetworkParams params)
    : scheduler_(scheduler), params_(params) {
  KADOP_CHECK(scheduler_ != nullptr, "Network requires a scheduler");
  KADOP_CHECK(params_.uplink_bytes_per_s > 0, "uplink bandwidth must be > 0");
  KADOP_CHECK(params_.downlink_bytes_per_s > 0,
              "downlink bandwidth must be > 0");
}

NodeIndex Network::AddNode(Actor* actor) {
  KADOP_CHECK(actor != nullptr, "null actor");
  nodes_.push_back(actor);
  up_.push_back(true);
  uplink_free_.push_back(0.0);
  downlink_free_.push_back(0.0);
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

void Network::SetNodeUp(NodeIndex node, bool up) {
  KADOP_CHECK(node < up_.size(), "bad node index");
  up_[node] = up;
}

bool Network::IsNodeUp(NodeIndex node) const {
  KADOP_CHECK(node < up_.size(), "bad node index");
  return up_[node];
}

void Network::Send(Message msg) {
  KADOP_CHECK(msg.from < nodes_.size() && msg.to < nodes_.size(),
              "bad endpoint");
  const size_t payload_bytes = msg.payload ? msg.payload->SizeBytes() : 0;
  const size_t bytes = payload_bytes + params_.header_bytes;
  const SimTime now = scheduler_->Now();

  // Wire-propagated trace context: unless the sender stamped one
  // explicitly, the message carries the sender's current context so spans
  // opened while handling it on the remote peer parent to the span that
  // caused the send.
  if (!msg.trace.active()) msg.trace = obs::CurrentTraceContext();

  // Local delivery: free (no network traffic, no link occupancy); the
  // handler still runs strictly after the send returns, preserving
  // causality.
  if (msg.from == msg.to) {
    scheduler_->At(now, [this, msg = std::move(msg)]() {
      if (up_[msg.to]) {
        obs::TraceContext ctx = msg.trace;
        ctx.node = msg.to;
        obs::ScopedTraceContext scope(ctx);
        nodes_[msg.to]->HandleMessage(msg);
      } else {
        ++dropped_;
        Counters().dropped->Increment();
      }
    });
    return;
  }

  traffic_.messages++;
  traffic_.bytes += bytes;
  traffic_.bytes_by_category[static_cast<size_t>(msg.category)] += bytes;
  traffic_.messages_by_category[static_cast<size_t>(msg.category)]++;
  Counters().messages->Increment();
  Counters().bytes->Increment(bytes);
  if (msg.payload) {
    TypeCounters& tc = CountersForType(msg.payload->TypeName());
    tc.messages->Increment();
    tc.bytes->Increment(bytes);
  }

  const double b = static_cast<double>(bytes);

  // One fault verdict per non-local send, drawn in send order so the same
  // seed replays the identical drop/dup/delay sequence.
  FaultDecision fd;
  if (fault_plan_ != nullptr) fd = fault_plan_->OnSend(msg);

  SimTime departure = (uplink_free_[msg.from] > now ? uplink_free_[msg.from]
                                                    : now) +
                      b / params_.uplink_bytes_per_s;
  uplink_free_[msg.from] = departure;

  // A dropped message still occupied the sender's uplink and the traffic
  // meter (the bytes were transmitted); it just never reaches a downlink.
  if (fd.drop) {
    ++dropped_;
    Counters().dropped->Increment();
    FaultCounters().injected->Increment();
    FaultCounters().drops->Increment();
    return;
  }
  if (fd.extra_delay_s > 0) {
    FaultCounters().injected->Increment();
    FaultCounters().delayed->Increment();
  }

  SimTime ready = departure + params_.hop_latency_s + fd.extra_delay_s;
  SimTime delivery =
      (downlink_free_[msg.to] > ready ? downlink_free_[msg.to] : ready) +
      b / params_.downlink_bytes_per_s;
  downlink_free_[msg.to] = delivery;

  // Delivery requires both endpoints alive: a crashed sender's queued
  // transfers die with it, a crashed receiver drops arrivals.
  auto deliver = [this, msg](SimTime at) {
    scheduler_->At(at, [this, msg]() {
      if (up_[msg.to] && up_[msg.from]) {
        obs::TraceContext ctx = msg.trace;
        ctx.node = msg.to;
        obs::ScopedTraceContext scope(ctx);
        nodes_[msg.to]->HandleMessage(msg);
      } else {
        ++dropped_;
        Counters().dropped->Increment();
      }
    });
  };
  deliver(delivery);

  // A duplicate is a second arrival of the same bytes: it queues behind the
  // first copy on the receiver's downlink and is metered like any delivery.
  if (fd.duplicate) {
    FaultCounters().injected->Increment();
    FaultCounters().dups->Increment();
    traffic_.messages++;
    traffic_.bytes += bytes;
    traffic_.bytes_by_category[static_cast<size_t>(msg.category)] += bytes;
    traffic_.messages_by_category[static_cast<size_t>(msg.category)]++;
    Counters().messages->Increment();
    Counters().bytes->Increment(bytes);
    SimTime dup_delivery =
        downlink_free_[msg.to] + b / params_.downlink_bytes_per_s;
    downlink_free_[msg.to] = dup_delivery;
    deliver(dup_delivery);
  }
}

void Network::RunAfter(double cpu_time, std::function<void()> fn) {
  scheduler_->After(cpu_time, std::move(fn));
}

}  // namespace kadop::sim
