#ifndef KADOP_SIM_NETWORK_H_
#define KADOP_SIM_NETWORK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "sim/message.h"
#include "sim/scheduler.h"

namespace kadop::sim {

class FaultPlan;

/// An endpoint attached to the network. Higher layers (DHT peers) implement
/// this to receive messages.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Called by the network when a message addressed to this actor arrives.
  virtual void HandleMessage(const Message& msg) = 0;
};

/// Link and host parameters. Defaults model a wide-area P2P deployment with
/// the usual asymmetry: the per-peer uplink is the scarce resource (this is
/// what makes single-source long-posting-list transfers the bottleneck the
/// paper describes, and what DPP's multi-source parallel fetch relieves).
struct NetworkParams {
  /// One-way propagation delay per overlay hop, seconds.
  double hop_latency_s = 0.002;
  /// Per-peer upload bandwidth, bytes/second.
  double uplink_bytes_per_s = 10.0 * 1024 * 1024;
  /// Per-peer download bandwidth, bytes/second.
  double downlink_bytes_per_s = 40.0 * 1024 * 1024;
  /// Fixed per-message framing overhead, bytes.
  size_t header_bytes = 64;
};

/// Byte/message counters, total and per category.
struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  std::array<uint64_t, static_cast<size_t>(TrafficCategory::kCategoryCount)>
      bytes_by_category{};
  std::array<uint64_t, static_cast<size_t>(TrafficCategory::kCategoryCount)>
      messages_by_category{};

  uint64_t CategoryBytes(TrafficCategory c) const {
    return bytes_by_category[static_cast<size_t>(c)];
  }
};

/// A store-and-forward message-passing network over a virtual clock.
///
/// Transfer model for a message of b bytes from s to d:
///   departure = max(now, uplink_free[s]) + b / uplink_bw
///   ready     = departure + hop_latency
///   delivery  = max(ready, downlink_free[d]) + b / downlink_bw
/// Uplink/downlink occupancy is FIFO per peer, so concurrent transfers from
/// one peer serialize while transfers from distinct peers proceed in
/// parallel — the property the DPP experiments depend on.
class Network {
 public:
  explicit Network(Scheduler* scheduler, NetworkParams params = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers an actor; returns its index. The actor must outlive the
  /// network. Registration order defines node indices.
  NodeIndex AddNode(Actor* actor);

  /// Number of registered nodes.
  size_t NodeCount() const { return nodes_.size(); }

  /// Marks a node up/down. Messages to a down node are dropped (counted in
  /// `dropped_messages()`); this is how peer failure is injected in tests.
  void SetNodeUp(NodeIndex node, bool up);
  bool IsNodeUp(NodeIndex node) const;

  /// Sends `msg` (from/to must be valid node indices). Bytes are charged to
  /// the meter immediately; delivery is scheduled per the transfer model.
  void Send(Message msg);

  /// Runs a local computation on `node` that takes `cpu_time` of virtual
  /// time before invoking `fn`. Used to model disk reads and join CPU cost.
  void RunAfter(double cpu_time, std::function<void()> fn);

  const TrafficStats& traffic() const { return traffic_; }
  void ResetTraffic() { traffic_ = TrafficStats(); }

  uint64_t dropped_messages() const { return dropped_; }

  /// Installs a seeded fault plan consulted on every non-local send
  /// (drop / duplicate / extra delay). nullptr disables injection. The plan
  /// is borrowed and must outlive the network or be cleared first.
  void SetFaultPlan(FaultPlan* plan) { fault_plan_ = plan; }
  FaultPlan* fault_plan() const { return fault_plan_; }

  Scheduler* scheduler() { return scheduler_; }
  SimTime Now() const { return scheduler_->Now(); }
  const NetworkParams& params() const { return params_; }

 private:
  Scheduler* scheduler_;
  NetworkParams params_;
  std::vector<Actor*> nodes_;
  std::vector<bool> up_;
  std::vector<SimTime> uplink_free_;
  std::vector<SimTime> downlink_free_;
  TrafficStats traffic_;
  uint64_t dropped_ = 0;
  FaultPlan* fault_plan_ = nullptr;
};

}  // namespace kadop::sim

#endif  // KADOP_SIM_NETWORK_H_
