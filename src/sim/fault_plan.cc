#include "sim/fault_plan.h"

#include <algorithm>
#include <utility>

namespace kadop::sim {

FaultPlan::FaultPlan(FaultOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

bool FaultPlan::IsSlow(NodeIndex node) const {
  return std::find(options_.slow_peers.begin(), options_.slow_peers.end(),
                   node) != options_.slow_peers.end();
}

FaultDecision FaultPlan::OnSend(const Message& msg) {
  FaultDecision d;
  if (options_.drop_p > 0 && rng_.Bernoulli(options_.drop_p)) {
    d.drop = true;
    stats_.drops++;
    // A dropped message cannot also be duplicated or delayed; later fault
    // classes draw nothing so the RNG stream stays aligned with the
    // decision sequence, not with the knob set.
    return d;
  }
  if (options_.dup_p > 0 && rng_.Bernoulli(options_.dup_p)) {
    d.duplicate = true;
    stats_.dups++;
  }
  if (options_.jitter_mean_s > 0) {
    d.extra_delay_s += rng_.Exponential(options_.jitter_mean_s);
  }
  if (options_.slow_extra_s > 0 && IsSlow(msg.from)) {
    d.extra_delay_s += options_.slow_extra_s;
  }
  if (d.extra_delay_s > 0) stats_.delayed++;
  return d;
}

}  // namespace kadop::sim
