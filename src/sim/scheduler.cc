#include "sim/scheduler.h"

#include <utility>

namespace kadop::sim {

void Scheduler::At(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Scheduler::After(SimTime delay, std::function<void()> fn) {
  At(now_ + (delay > 0 ? delay : 0), std::move(fn));
}

SimTime Scheduler::RunUntilIdle() {
  while (!queue_.empty()) {
    // The event function may schedule more events; copy out first.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
  }
  return now_;
}

SimTime Scheduler::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace kadop::sim
