#include "sim/scheduler.h"

#include <utility>

namespace kadop::sim {

EventId Scheduler::At(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = next_seq_++;
  queue_.push(Event{when, id, std::move(fn), obs::CurrentTraceContext()});
  return id;
}

EventId Scheduler::After(SimTime delay, std::function<void()> fn) {
  return At(now_ + (delay > 0 ? delay : 0), std::move(fn));
}

bool Scheduler::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_seq_) return false;
  // Lazy cancellation: the event stays queued and is discarded on pop.
  return cancelled_.insert(id).second;
}

SimTime Scheduler::RunUntilIdle() {
  while (!queue_.empty()) {
    // The event function may schedule more events; copy out first.
    Event ev = queue_.top();
    queue_.pop();
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) continue;
    now_ = ev.time;
    ++executed_;
    obs::ScopedTraceContext scope(ev.ctx);
    ev.fn();
  }
  return now_;
}

SimTime Scheduler::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) continue;
    now_ = ev.time;
    ++executed_;
    obs::ScopedTraceContext scope(ev.ctx);
    ev.fn();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace kadop::sim
