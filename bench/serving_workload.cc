// Open-loop serving SLO harness: a multi-tenant query mix offered at fixed
// arrival rates (Poisson, in virtual time) against a network that keeps
// indexing new documents while it serves. Unlike the closed-loop figure
// benches, arrivals never wait for completions, so queueing delay at the
// modeled disks and links shows up directly in the tail percentiles.
//
// Emitted rows (BENCH_serving.json):
//   kind=qps_step         one per offered-QPS ladder step on the main network
//   kind=flash_crowd      a burst phase concentrating arrivals on the hot
//                         tenant
//   kind=knee             the first ladder step that violates the serving SLO
//   kind=qps_step_repl    the same ladder on a same-seed twin network with
//                         hot-data replication enabled (A/B by row index)
//   kind=flash_crowd_repl the burst phase on the replicated twin
//   kind=qps_step_views   the same ladder on a same-seed twin with the
//                         tenant patterns materialized as views (A/B by
//                         row index; carries view hit-rate cells)
//   kind=view_probe       wire-bytes A/B on the selective tenant: kDppJoin
//                         total posting movement vs. the view extent
//   kind=capacity         peers vs. highest SLO-passing offered QPS
//
// Everything runs in virtual time from seeded RNGs: two runs with the same
// seed produce byte-identical JSON.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "core/kadop.h"
#include "index/publisher.h"
#include "obs/metrics.h"

namespace kadop {
namespace {

// Serving SLO: a step is sustainable when p99 stays under the bound and at
// least 90% of the offered load completes within the measurement window.
constexpr double kSloP99Seconds = 0.5;
constexpr double kSloMinCompletion = 0.9;

/// One tenant of the serving mix: a query template plus its traffic share
/// rank (rank 0 is the hot tenant a flash crowd piles onto).
struct Tenant {
  const char* name;
  const char* xpath;
};

const Tenant kTenants[] = {
    {"hot_twig", "//article[//author]//title"},
    {"scan_authors", "//article//author"},
    {"proceedings", "//inproceedings//title"},
    {"word_lookup", "//article//title//\"database\""},
    {"filtered", "//article[contains(.//title,'system')]//author"},
    {"rare_thesis", "//phdthesis//author"},
};
constexpr size_t kTenantCount = sizeof(kTenants) / sizeof(kTenants[0]);

struct StepResult {
  double offered_qps = 0;
  double achieved_qps = 0;
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
  /// Exact (order-statistic) percentiles alongside the bucketed ones: the
  /// views A/B compares same-seed twins row against row, where histogram
  /// quantization would hide real differences.
  double p50_exact = 0;
  double p99_exact = 0;
  double p999_exact = 0;
  size_t submitted = 0;
  size_t completed = 0;
  size_t degraded = 0;
  size_t max_inflight = 0;
  uint64_t window_gets = 0;
  uint64_t window_appends = 0;
  /// Largest per-holder gets delta in the window: the saturation signal
  /// hot-data replication exists to reduce.
  uint64_t max_holder_gets = 0;

  bool MeetsSlo() const {
    return p99 <= kSloP99Seconds &&
           static_cast<double>(completed) >=
               kSloMinCompletion * static_cast<double>(submitted);
  }
};

/// Sums a counter family (`load.holder.<N>.gets` etc.) from a snapshot.
uint64_t SumSuffix(const obs::MetricsSnapshot& snap, const char* prefix,
                   const char* suffix) {
  uint64_t total = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind(prefix, 0) == 0 &&
        name.size() >= std::string(suffix).size() &&
        name.compare(name.size() - std::string(suffix).size(),
                     std::string::npos, suffix) == 0) {
      total += value;
    }
  }
  return total;
}

/// Maximum over a counter family from a snapshot.
uint64_t MaxSuffix(const obs::MetricsSnapshot& snap, const char* prefix,
                   const char* suffix) {
  uint64_t best = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind(prefix, 0) == 0 &&
        name.size() >= std::string(suffix).size() &&
        name.compare(name.size() - std::string(suffix).size(),
                     std::string::npos, suffix) == 0) {
      best = std::max(best, value);
    }
  }
  return best;
}

/// Runs one open-loop window: Poisson arrivals at `qps` over `window_s`
/// virtual seconds, tenant picked by Zipf rank, query peer uniform. When
/// `burst_mult > 1`, the middle third of the window additionally offers
/// `(burst_mult - 1) * qps` arrivals, all of them the rank-0 tenant. One
/// churn document is published every eighth of the window while serving.
/// Exact order-statistic percentile over a sorted sample.
double ExactPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[rank];
}

StepResult RunStep(core::KadopNet& net, const ZipfSampler& zipf,
                   std::vector<const xml::Document*>& churn,
                   size_t& next_churn, uint64_t seed, double qps,
                   double window_s, double burst_mult) {
  Rng rng(seed);
  obs::WindowedSnapshots windows(obs::MetricRegistry::Default());
  obs::Histogram latencies(obs::LogLatencyBuckets());
  std::vector<double> samples;

  StepResult out;
  out.offered_qps = qps;
  size_t inflight = 0;
  const double start = net.scheduler().Now();

  const auto submit = [&](double when, size_t tenant) {
    net.scheduler().At(when, [&net, &rng, &out, &inflight, &latencies,
                              &samples, tenant]() {
      const auto at = static_cast<sim::NodeIndex>(
          rng.Uniform(static_cast<uint64_t>(net.PeerCount())));
      query::QueryOptions qopt;
      qopt.strategy = query::QueryStrategy::kAuto;
      qopt.dpp_join_available = true;
      const double submitted_at = net.scheduler().Now();
      out.submitted++;
      inflight++;
      out.max_inflight = std::max(out.max_inflight, inflight);
      const Status ok = net.SubmitQuery(
          at, kTenants[tenant].xpath, qopt,
          [&net, &out, &inflight, &latencies, &samples,
           submitted_at](query::QueryResult result) {
            inflight--;
            out.completed++;
            if (result.metrics.degraded) out.degraded++;
            const double elapsed = net.scheduler().Now() - submitted_at;
            latencies.Observe(elapsed);
            samples.push_back(elapsed);
          });
      KADOP_CHECK(ok.ok(), "serving-mix query must parse");
    });
  };

  // Base arrivals: open loop, so the full schedule is laid out up front and
  // never throttles on completions.
  for (double t = start + rng.Exponential(1.0 / qps); t < start + window_s;
       t += rng.Exponential(1.0 / qps)) {
    submit(t, zipf.Sample(rng));
  }
  // Flash crowd: extra rank-0 arrivals across the middle third.
  if (burst_mult > 1.0) {
    const double extra = (burst_mult - 1.0) * qps;
    for (double t = start + window_s / 3 + rng.Exponential(1.0 / extra);
         t < start + 2 * window_s / 3; t += rng.Exponential(1.0 / extra)) {
      submit(t, 0);
    }
  }
  // Continuous publishing: the index keeps growing while it serves.
  std::vector<std::shared_ptr<index::Publisher>> publishers;
  for (int p = 0; p < 8 && next_churn < churn.size(); ++p, ++next_churn) {
    const double when = start + (p + 0.5) * window_s / 8;
    const xml::Document* doc = churn[next_churn];
    const auto from = static_cast<sim::NodeIndex>(
        rng.Uniform(static_cast<uint64_t>(net.PeerCount())));
    net.scheduler().At(when, [&net, &publishers, doc, from]() {
      // The network's publish options carry the view-delta hooks, so churn
      // keeps materialized extents fresh on the views twin.
      auto pub = std::make_shared<index::Publisher>(
          net.peer(from)->dht_peer(), &net.peer(from)->doc_store(),
          net.options().publish);
      publishers.push_back(pub);
      pub->Publish({doc}, [] {});
    });
  }

  net.RunToIdle();

  const obs::MetricsSnapshot& delta = windows.Advance(start + window_s).delta;
  out.window_gets = SumSuffix(delta, "load.holder.", ".gets");
  out.window_appends = SumSuffix(delta, "load.holder.", ".appends");
  out.max_holder_gets = MaxSuffix(delta, "load.holder.", ".gets");
  out.achieved_qps = static_cast<double>(out.completed) / window_s;
  out.p50 = latencies.Percentile(0.50);
  out.p99 = latencies.Percentile(0.99);
  out.p999 = latencies.Percentile(0.999);
  std::sort(samples.begin(), samples.end());
  out.p50_exact = ExactPercentile(samples, 0.50);
  out.p99_exact = ExactPercentile(samples, 0.99);
  out.p999_exact = ExactPercentile(samples, 0.999);
  return out;
}

void AddLatencyCells(bench::BenchReport::Row& row, const StepResult& r) {
  row.Num("offered_qps", r.offered_qps)
      .Num("achieved_qps", r.achieved_qps)
      .Num("p50", r.p50)
      .Num("p99", r.p99)
      .Num("p999", r.p999)
      .Num("p50_exact", r.p50_exact)
      .Num("p99_exact", r.p99_exact)
      .Num("p999_exact", r.p999_exact)
      .Num("submitted", static_cast<double>(r.submitted))
      .Num("completed", static_cast<double>(r.completed))
      .Num("degraded", static_cast<double>(r.degraded))
      .Num("max_inflight", static_cast<double>(r.max_inflight))
      .Num("window_gets", static_cast<double>(r.window_gets))
      .Num("window_appends", static_cast<double>(r.window_appends))
      .Num("max_holder_gets", static_cast<double>(r.max_holder_gets));
}

void PrintStep(const char* kind, const StepResult& r) {
  std::printf("%-12s offered %7.1f qps | achieved %7.1f | p50 %8.4fs | "
              "p99 %8.4fs | p999 %8.4fs | inflight<=%zu%s\n",
              kind, r.offered_qps, r.achieved_qps, r.p50, r.p99, r.p999,
              r.max_inflight, r.MeetsSlo() ? "" : "  [SLO MISS]");
  std::fflush(stdout);
}

void Run() {
  const bool quick = bench::QuickMode();
  bench::Banner("SERVING", "open-loop multi-tenant serving SLO harness");
  bench::BenchReport report("serving",
                            "open-loop multi-tenant serving SLO harness");

  // Main serving network.
  xml::corpus::DblpOptions copt;
  copt.target_bytes = (quick ? 1u : 3u) << 20;
  auto docs = xml::corpus::GenerateDblp(copt);
  // Churn corpus published while serving (distinct from the base corpus so
  // every publish indexes fresh documents).
  xml::corpus::DblpOptions churn_opt;
  churn_opt.target_bytes = 1u << 20;
  auto churn_docs = xml::corpus::GenerateDblp(churn_opt);
  auto churn = bench::Ptrs(churn_docs);
  size_t next_churn = 0;

  core::KadopOptions opt;
  opt.peers = quick ? 24 : 48;
  core::KadopNet net(opt);
  net.RegisterDocuments(docs);
  net.RegisterDocuments(churn_docs);
  net.PublishAndWait(0, bench::Ptrs(docs));

  const ZipfSampler zipf(kTenantCount, 1.0);
  const double window_s = quick ? 8.0 : 20.0;
  const std::vector<double> ladder =
      quick ? std::vector<double>{4, 8, 16, 32}
            : std::vector<double>{4, 8, 16, 32, 64, 128};

  std::vector<StepResult> steps;
  for (size_t i = 0; i < ladder.size(); ++i) {
    const StepResult r = RunStep(net, zipf, churn, next_churn,
                                 /*seed=*/1000 + i, ladder[i], window_s,
                                 /*burst_mult=*/1.0);
    PrintStep("qps_step", r);
    steps.push_back(r);
    auto& row = report.AddRow().Str("kind", "qps_step");
    AddLatencyCells(row, r);
  }

  // Saturation knee: the first ladder step that misses the SLO, or that
  // inflates p99 past 3x the unloaded (first-step) p99.
  double knee_qps = 0;
  std::string knee_reason = "none within ladder";
  for (size_t i = 0; i < steps.size(); ++i) {
    const bool slo_miss = !steps[i].MeetsSlo();
    const bool tail_blowup = i > 0 && steps[0].p99 > 0 &&
                             steps[i].p99 > 3.0 * steps[0].p99;
    if (slo_miss || tail_blowup) {
      knee_qps = steps[i].offered_qps;
      knee_reason = slo_miss ? "slo_miss" : "p99_over_3x_unloaded";
      break;
    }
  }
  std::printf("knee: %.1f qps (%s)\n", knee_qps, knee_reason.c_str());
  report.AddRow()
      .Str("kind", "knee")
      .Num("offered_qps", knee_qps)
      .Str("reason", knee_reason);

  // Flash crowd on the main network: mid-ladder base rate, middle third
  // concentrates 6x arrivals on the hot tenant.
  {
    const double base = ladder[ladder.size() / 2];
    const StepResult r = RunStep(net, zipf, churn, next_churn, /*seed=*/77,
                                 base, window_s, /*burst_mult=*/6.0);
    PrintStep("flash_crowd", r);
    auto& row = report.AddRow().Str("kind", "flash_crowd").Num(
        "burst_mult", 6.0);
    AddLatencyCells(row, r);
  }

  // Replication A/B: a same-seed twin network with hot-data replication
  // enabled replays the exact ladder and flash crowd (same arrival seeds,
  // same churn documents), so the off/on rows pair up by index. Thresholds
  // are scaled to the window so promotion happens within the first steps.
  {
    core::KadopOptions ropt = opt;
    ropt.dht.repl.enabled = true;
    ropt.dht.repl.replicas = 2;
    ropt.dht.repl.window_s = quick ? 0.5 : 1.0;
    ropt.dht.repl.hot_gets_per_window = quick ? 8 : 16;
    ropt.dht.repl.hot_windows = 2;
    // Sticky replicas for the bench: only an idle window counts as cooling,
    // so copies survive the inter-step gaps.
    ropt.dht.repl.cool_gets_per_window = 0;
    ropt.dht.repl.cool_windows = 8;
    core::KadopNet rnet(ropt);
    rnet.RegisterDocuments(docs);
    rnet.RegisterDocuments(churn_docs);
    rnet.PublishAndWait(0, bench::Ptrs(docs));
    size_t next_churn_repl = 0;

    for (size_t i = 0; i < ladder.size(); ++i) {
      const StepResult r = RunStep(rnet, zipf, churn, next_churn_repl,
                                   /*seed=*/1000 + i, ladder[i], window_s,
                                   /*burst_mult=*/1.0);
      PrintStep("qps_step_repl", r);
      auto& row = report.AddRow().Str("kind", "qps_step_repl");
      AddLatencyCells(row, r);
    }
    const double base = ladder[ladder.size() / 2];
    const StepResult r = RunStep(rnet, zipf, churn, next_churn_repl,
                                 /*seed=*/77, base, window_s,
                                 /*burst_mult=*/6.0);
    PrintStep("flash_repl", r);
    const obs::MetricsSnapshot final_snap =
        obs::MetricRegistry::Default().Snapshot();
    auto& row = report.AddRow()
                    .Str("kind", "flash_crowd_repl")
                    .Num("burst_mult", 6.0)
                    .Num("promotions",
                         static_cast<double>(SumSuffix(
                             final_snap, "repl.promotions", "")))
                    .Num("replica_gets",
                         static_cast<double>(SumSuffix(
                             final_snap, "repl.replica_gets", "")));
    AddLatencyCells(row, r);
  }

  // Views A/B: a same-seed twin with every tenant pattern materialized as
  // a view (advisor off — the views are pinned) replays the exact ladder,
  // so the off/on rows pair up by index. Churn publishes flow through the
  // hooked publish options, keeping extents fresh between steps.
  {
    core::KadopOptions vnopt = opt;
    vnopt.views.enabled = true;
    core::KadopNet vnet(vnopt);
    vnet.RegisterDocuments(docs);
    vnet.RegisterDocuments(churn_docs);
    vnet.PublishAndWait(0, bench::Ptrs(docs));
    for (const Tenant& t : kTenants) {
      auto created = vnet.CreateViewAndWait(t.xpath, t.name);
      if (!created.ok()) {
        std::printf("view for tenant %s not materialized: %s\n", t.name,
                    created.status().ToString().c_str());
      }
    }
    size_t next_churn_views = 0;
    obs::Counter* view_hits =
        obs::MetricRegistry::Default().GetCounter("view.hits");
    for (size_t i = 0; i < ladder.size(); ++i) {
      const uint64_t hits_before = view_hits->value();
      const StepResult r = RunStep(vnet, zipf, churn, next_churn_views,
                                   /*seed=*/1000 + i, ladder[i], window_s,
                                   /*burst_mult=*/1.0);
      // Resync so any churn delta that raced the window close is applied
      // before the next step prices the extents.
      vnet.SyncViews();
      const uint64_t step_hits = view_hits->value() - hits_before;
      PrintStep("qps_step_views", r);
      auto& row = report.AddRow().Str("kind", "qps_step_views");
      AddLatencyCells(row, r);
      row.Num("view_hits", static_cast<double>(step_hits))
          .Num("view_hit_rate",
               r.completed > 0 ? static_cast<double>(step_hits) /
                                     static_cast<double>(r.completed)
                               : 0.0);
    }

    // Wire-bytes probe on the selective tenant: kDppJoin's total posting
    // movement (query-peer ingress plus holder-side join input) against
    // the view extent fetch — same network, same data, answers must be
    // byte-identical.
    const Tenant& probe = kTenants[4];
    query::QueryOptions jq;
    jq.strategy = query::QueryStrategy::kDppJoin;
    jq.dpp_join_available = true;
    auto djoin = vnet.QueryAndWait(1, probe.xpath, jq);
    query::QueryOptions vq;
    vq.strategy = query::QueryStrategy::kView;
    auto viewed = vnet.QueryAndWait(1, probe.xpath, vq);
    KADOP_CHECK(djoin.ok() && viewed.ok(), "probe queries must run");
    const query::QueryMetrics& jm = djoin.value().metrics;
    const query::QueryMetrics& vm = viewed.value().metrics;
    const double djoin_wire = static_cast<double>(jm.posting_wire_bytes +
                                                  jm.join_input_wire_bytes);
    const double view_wire = static_cast<double>(vm.posting_wire_bytes +
                                                 vm.join_input_wire_bytes);
    const bool match =
        djoin.value().answers == viewed.value().answers &&
        djoin.value().matched_docs == viewed.value().matched_docs;
    std::printf("view_probe   %s: djoin %.1f KB vs view %.1f KB "
                "(%.1fx), answers %s\n",
                probe.name, djoin_wire / 1024.0, view_wire / 1024.0,
                view_wire > 0 ? djoin_wire / view_wire : 0.0,
                match ? "match" : "DIVERGE");
    std::fflush(stdout);
    report.AddRow()
        .Str("kind", "view_probe")
        .Str("tenant", probe.name)
        .Num("djoin_wire_bytes", djoin_wire)
        .Num("view_wire_bytes", view_wire)
        .Num("wire_ratio", view_wire > 0 ? djoin_wire / view_wire : 0.0)
        .Num("view_hit", vm.view_hit ? 1.0 : 0.0)
        .Num("answers", static_cast<double>(viewed.value().answers.size()))
        .Num("answers_match", match ? 1.0 : 0.0);
  }

  // Capacity table: fresh smaller networks per peer count, ladder ascended
  // until the SLO breaks; sustainable = the last passing offered rate.
  const std::vector<size_t> peer_counts =
      quick ? std::vector<size_t>{8, 16} : std::vector<size_t>{16, 32, 64};
  xml::corpus::DblpOptions cap_copt;
  cap_copt.target_bytes = 1u << 20;
  auto cap_docs = xml::corpus::GenerateDblp(cap_copt);
  for (size_t pi = 0; pi < peer_counts.size(); ++pi) {
    const size_t peers = peer_counts[pi];
    core::KadopOptions cap_opt;
    cap_opt.peers = peers;
    core::KadopNet cap_net(cap_opt);
    cap_net.RegisterDocuments(cap_docs);
    cap_net.PublishAndWait(0, bench::Ptrs(cap_docs));
    std::vector<const xml::Document*> no_churn;
    size_t no_churn_at = 0;
    double sustainable = 0;
    StepResult last_pass;
    // Doubling search: keep raising the offered rate past the ladder until
    // the SLO actually breaks, so the table differentiates peer counts even
    // when every ladder step passes.
    double rate = ladder.front();
    for (size_t i = 0; i < 10; ++i, rate *= 2) {
      const StepResult r =
          RunStep(cap_net, zipf, no_churn, no_churn_at,
                  /*seed=*/5000 + 100 * pi + i, rate, window_s,
                  /*burst_mult=*/1.0);
      if (!r.MeetsSlo()) break;
      sustainable = r.offered_qps;
      last_pass = r;
    }
    std::printf("capacity: %3zu peers -> sustainable %7.1f qps\n", peers,
                sustainable);
    std::fflush(stdout);
    auto& row = report.AddRow()
                    .Str("kind", "capacity")
                    .Num("peers", static_cast<double>(peers))
                    .Num("sustainable_qps", sustainable);
    AddLatencyCells(row, last_pass);
  }

  report.Write();
  std::printf(
      "\nOpen-loop arrivals expose queueing at the modeled disks and peer\n"
      "links: percentiles stay flat until the knee, then the tail blows up\n"
      "while achieved QPS saturates. The capacity table reports the highest\n"
      "SLO-passing offered rate per network size; once the mix is dominated\n"
      "by a single heavy tenant's intrinsic latency, adding peers stops\n"
      "raising it.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
