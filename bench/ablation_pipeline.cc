// Ablation for Section 3 ("Improving query response time"): the pipelined
// get. With the standard blocking get the holistic twig join cannot start
// before whole posting lists have arrived; the pipelined get streams
// blocks, so the join produces its first answers while the long lists are
// still in flight — the "time to the first answer" metric.

#include <cstdio>

#include "bench/bench_util.h"

namespace kadop {
namespace {

void Run() {
  bench::Banner("SEC 3 ablation", "pipelined vs blocking get");
  bench::BenchReport report("ablation_pipeline",
                            "pipelined vs blocking get");
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 8 << 20;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 64;
  opt.enable_dpp = false;
  core::KadopNet net(opt);
  net.PublishAndWait(0, bench::Ptrs(docs));

  const char* expr = "//article//author";
  std::printf("query: %s\n\n", expr);
  std::printf("%-22s%20s%18s\n", "get variant", "first answer (s)",
              "response (s)");
  for (bool pipelined : {false, true}) {
    query::QueryOptions qopt;
    qopt.strategy = query::QueryStrategy::kBaseline;
    qopt.pipelined = pipelined;
    qopt.block_postings = 2048;
    auto result = net.QueryAndWait(1, expr, qopt);
    if (!result.ok()) {
      std::printf("query failed: %s\n", result.status().ToString().c_str());
      continue;
    }
    const query::QueryMetrics& m = result.value().metrics;
    std::printf("%-22s%20.4f%18.4f\n",
                pipelined ? "pipelined get" : "blocking get",
                m.TimeToFirstAnswer(), m.ResponseTime());
    report.AddRow()
        .Str("get_variant", pipelined ? "pipelined" : "blocking")
        .Num("first_answer_s", m.TimeToFirstAnswer())
        .Num("response_s", m.ResponseTime());
  }
  report.Write();
  std::printf(
      "\nPaper shape: with the blocking get the join waits for entire\n"
      "lists; the pipelined get brings the first answers long before the\n"
      "slowest transfer completes.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
