// Reproduces Table 1: the average dyadic-cover size |D(e)| per element for
// several (synthetic stand-ins of the) real-life and synthetic data sets,
// together with the worst-case bound 2l.
//
// Paper values: IMDB 1.37 (2l=32), XMark 1.50 (34), SwissProt 1.29 (42),
// NASA 1.55 (38), DBLP 1.23 (40). The point: XML elements are narrow, so
// covers stay tiny compared to the 2l bound, keeping the AB filter small.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "bloom/dyadic.h"

namespace kadop {
namespace {

struct Row {
  const char* name;
  std::function<std::vector<xml::Document>()> generate;
  double paper_cover;
  int paper_2l;
};

void MeasureCover(const xml::Node& node, int levels, uint64_t& pieces,
                  uint64_t& elements) {
  if (node.IsElement()) {
    pieces += bloom::DyadicCover(node.sid().start, node.sid().end, levels)
                  .size();
    elements += 1;
  }
  for (const auto& child : node.children()) {
    MeasureCover(*child, levels, pieces, elements);
  }
}

void Run() {
  bench::Banner("TABLE 1", "average size of the dyadic cover");
  bench::BenchReport report("table1_dyadic",
                            "average size of the dyadic cover");
  xml::corpus::SimpleCorpusOptions base;
  const std::vector<Row> rows = {
      {"IMDB",
       [&] {
         auto o = base;
         o.target_elements = 100000;
         return xml::corpus::GenerateImdb(o);
       },
       1.37, 32},
      {"XMark",
       [&] {
         auto o = base;
         o.target_elements = 200000;
         return xml::corpus::GenerateXmark(o);
       },
       1.50, 34},
      {"SwissProt",
       [&] {
         auto o = base;
         o.target_elements = 300000;  // scaled from 3.2M
         return xml::corpus::GenerateSwissprot(o);
       },
       1.29, 42},
      {"NASA",
       [&] {
         auto o = base;
         o.target_elements = 150000;  // scaled from 500K
         return xml::corpus::GenerateNasa(o);
       },
       1.55, 38},
      {"DBLP",
       [&] {
         xml::corpus::DblpOptions o;
         o.target_bytes = 8 << 20;
         return xml::corpus::GenerateDblp(o);
       },
       1.23, 40},
  };

  std::printf("%-12s%12s%14s%14s%8s%12s\n", "data set", "elements",
              "|D(e)| here", "|D(e)| paper", "2l", "2l paper");
  for (const Row& row : rows) {
    auto docs = row.generate();
    uint32_t max_tag = 0;
    for (const auto& doc : docs) {
      if (doc.root) max_tag = std::max(max_tag, doc.root->sid().end);
    }
    const int levels = bloom::LevelsFor(max_tag);
    uint64_t pieces = 0, elements = 0;
    for (const auto& doc : docs) {
      if (doc.root) MeasureCover(*doc.root, levels, pieces, elements);
    }
    std::printf("%-12s%12llu%14.2f%14.2f%8d%12d\n", row.name,
                static_cast<unsigned long long>(elements),
                static_cast<double>(pieces) / static_cast<double>(elements),
                row.paper_cover, 2 * levels, row.paper_2l);
    std::fflush(stdout);
    report.AddRow()
        .Str("data_set", row.name)
        .Num("elements", static_cast<double>(elements))
        .Num("avg_cover",
             static_cast<double>(pieces) / static_cast<double>(elements))
        .Num("paper_cover", row.paper_cover)
        .Num("two_l", 2.0 * levels)
        .Num("paper_two_l", row.paper_2l);
  }
  report.Write();
  std::printf(
      "\nNote: 2l here reflects our per-document tag domains (the paper's\n"
      "values come from the original corpora); the reproduced claim is\n"
      "|D(e)| ~ 1.2-1.6, far below the 2l worst case.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
