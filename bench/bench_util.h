#ifndef KADOP_BENCH_BENCH_UTIL_H_
#define KADOP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/kadop.h"
#include "xml/corpus.h"

namespace kadop::bench {

/// Pointers to a document vector (the publish API borrows documents).
inline std::vector<const xml::Document*> Ptrs(
    const std::vector<xml::Document>& docs) {
  std::vector<const xml::Document*> out;
  out.reserve(docs.size());
  for (const auto& d : docs) out.push_back(&d);
  return out;
}

/// Splits documents round-robin across `publishers` peers spaced evenly in
/// a network of `peers` nodes.
inline std::vector<std::pair<sim::NodeIndex,
                             std::vector<const xml::Document*>>>
SplitAcrossPublishers(const std::vector<xml::Document>& docs,
                      size_t publishers, size_t peers) {
  std::vector<std::pair<sim::NodeIndex, std::vector<const xml::Document*>>>
      batches(publishers);
  for (size_t p = 0; p < publishers; ++p) {
    batches[p].first = static_cast<sim::NodeIndex>(p * peers / publishers);
  }
  for (size_t i = 0; i < docs.size(); ++i) {
    batches[i % publishers].second.push_back(&docs[i]);
  }
  return batches;
}

/// Prints a header banner for one reproduced artifact.
inline void Banner(const char* artifact, const char* description) {
  std::printf("\n==================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("==================================================\n");
}

inline double Mb(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace kadop::bench

#endif  // KADOP_BENCH_BENCH_UTIL_H_
