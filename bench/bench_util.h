#ifndef KADOP_BENCH_BENCH_UTIL_H_
#define KADOP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/kadop.h"
#include "obs/buildinfo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "xml/corpus.h"

namespace kadop::bench {

/// True when the KADOP_BENCH_QUICK env var is set (non-empty): benches
/// shrink their workloads so CI can run one end-to-end in seconds.
inline bool QuickMode() {
  const char* v = std::getenv("KADOP_BENCH_QUICK");
  return v != nullptr && *v != '\0';
}

/// Machine-readable bench emission: rows of named cells plus the metrics
/// registry delta accumulated while the report was alive, written as
/// BENCH_<name>.json into $KADOP_BENCH_DIR (or the working directory).
/// Figure scripts and CI consume these instead of scraping stdout.
class BenchReport {
 public:
  BenchReport(std::string name, std::string description)
      : name_(std::move(name)),
        description_(std::move(description)),
        base_(obs::MetricRegistry::Default().Snapshot()) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  class Row {
   public:
    Row& Num(std::string key, double value) {
      cells_.emplace_back(std::move(key), value);
      return *this;
    }
    Row& Str(std::string key, std::string value) {
      cells_.emplace_back(std::move(key), std::move(value));
      return *this;
    }

   private:
    friend class BenchReport;
    using Cell = std::pair<std::string, std::variant<double, std::string>>;
    std::vector<Cell> cells_;
  };

  /// Adds a row; cells added through the returned reference land in the
  /// emitted JSON in insertion order.
  Row& AddRow() { return rows_.emplace_back(); }

  /// Writes BENCH_<name>.json; returns the path (empty on I/O failure).
  std::string Write() const {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("bench");
    w.Value(name_);
    w.Key("description");
    w.Value(description_);
    w.Key("schema_version");
    w.Value(static_cast<uint64_t>(1));
    // Sanitizer / profiling-timer provenance: sanitized timings are not
    // comparable, and wall-clock timers make ns counters nondeterministic.
    w.Key("buildinfo");
    w.Value(obs::BuildInfoString());
    w.Key("rows");
    w.BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject();
      for (const auto& [key, value] : row.cells_) {
        w.Key(key);
        if (const double* num = std::get_if<double>(&value)) {
          w.Value(*num);
        } else {
          w.Value(std::get<std::string>(value));
        }
      }
      w.EndObject();
    }
    w.EndArray();
    w.Key("metrics");
    obs::MetricRegistry::Default().Snapshot().DiffSince(base_).AppendJson(w);
    w.EndObject();

    std::string path;
    if (const char* dir = std::getenv("KADOP_BENCH_DIR");
        dir != nullptr && *dir != '\0') {
      path = std::string(dir) + "/";
    }
    path += "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return std::string();
    }
    const std::string& json = w.str();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return path;
  }

 private:
  std::string name_;
  std::string description_;
  obs::MetricsSnapshot base_;
  std::deque<Row> rows_;
};

/// Pointers to a document vector (the publish API borrows documents).
inline std::vector<const xml::Document*> Ptrs(
    const std::vector<xml::Document>& docs) {
  std::vector<const xml::Document*> out;
  out.reserve(docs.size());
  for (const auto& d : docs) out.push_back(&d);
  return out;
}

/// Splits documents round-robin across `publishers` peers spaced evenly in
/// a network of `peers` nodes.
inline std::vector<std::pair<sim::NodeIndex,
                             std::vector<const xml::Document*>>>
SplitAcrossPublishers(const std::vector<xml::Document>& docs,
                      size_t publishers, size_t peers) {
  std::vector<std::pair<sim::NodeIndex, std::vector<const xml::Document*>>>
      batches(publishers);
  for (size_t p = 0; p < publishers; ++p) {
    batches[p].first = static_cast<sim::NodeIndex>(p * peers / publishers);
  }
  for (size_t i = 0; i < docs.size(); ++i) {
    batches[i % publishers].second.push_back(&docs[i]);
  }
  return batches;
}

/// Prints a header banner for one reproduced artifact.
inline void Banner(const char* artifact, const char* description) {
  std::printf("\n==================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("==================================================\n");
}

inline double Mb(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace kadop::bench

#endif  // KADOP_BENCH_BENCH_UTIL_H_
