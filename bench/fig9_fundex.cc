// Reproduces Figure 9: Fundex query processing time on an INEX-HCO-like
// collection of two-file publications (description + abstract via an XML
// entity include), for growing collection sizes, under three indexing
// schemes for intensional data:
//   - Fundex-simple: functional documents indexed under fids; queries
//     complete potential answers through the Rev relation;
//   - Fundex-representative: a label-only skeleton indexed in place, value
//     conditions under intensional nodes ignored (lossy);
//   - Inlining: includes expanded before indexing.
//
// Query (paper): //article[contains(.//title,'system') and
//                          contains(.//abstract,'interface')]
// with very few actual matches (paper: 10 of 28 000).

#include <cstdio>

#include "bench/bench_util.h"

namespace kadop {
namespace {

constexpr const char* kQuery =
    "//article[contains(.//title,'system') and "
    "contains(.//abstract,'interface')]";

struct Outcome {
  double query_s = 0;
  double publish_s = 0;
  size_t matched = 0;
  uint64_t rev_lookups = 0;
};

Outcome RunOne(size_t publications, fundex::IntensionalMode mode,
               const std::vector<xml::Document>& docs) {
  core::KadopOptions opt;
  opt.peers = 100;
  core::KadopNet net(opt);
  net.RegisterDocuments(docs);
  std::vector<const xml::Document*> mains;
  for (size_t i = 0; i < publications; ++i) mains.push_back(&docs[i]);
  Outcome out;
  out.publish_s = net.FundexPublishAndWait(0, mains, mode);
  auto result = net.FundexQueryAndWait(1, kQuery, mode);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return out;
  }
  out.query_s = result.value().response_time;
  out.matched = result.value().matched_docs.size();
  out.rev_lookups = result.value().rev_lookups;
  return out;
}

void Run() {
  bench::Banner("FIG 9", "query processing time with the Fundex");
  bench::BenchReport report("fig9_fundex",
                            "query processing time with the Fundex");
  std::printf("query: %s\n", kQuery);
  std::printf("(three separately indexed networks per collection size)\n\n");
  std::printf("%-10s | %-22s | %-22s | %-16s\n", "",
              "Fundex-simple", "Fundex-representative", "Inlining");
  std::printf("%-10s | %10s %11s | %10s %11s | %8s %7s\n", "docs",
              "query(s)", "found(rev)", "query(s)", "found", "query(s)",
              "found");
  const size_t publication_counts[] = {1250, 2500, 3750, 5000, 6250};
  for (size_t pubs : publication_counts) {
    xml::corpus::InexOptions copt;
    copt.publications = pubs;
    copt.planted_matches = 10;
    auto docs = xml::corpus::GenerateInex(copt);
    Outcome simple =
        RunOne(pubs, fundex::IntensionalMode::kFundexSimple, docs);
    Outcome repr =
        RunOne(pubs, fundex::IntensionalMode::kFundexRepresentative, docs);
    Outcome inl = RunOne(pubs, fundex::IntensionalMode::kInline, docs);
    std::printf("%-10zu | %10.4f %6zu(%4llu) | %10.4f %11zu | %8.4f %7zu\n",
                2 * pubs, simple.query_s, simple.matched,
                static_cast<unsigned long long>(simple.rev_lookups),
                repr.query_s, repr.matched, inl.query_s, inl.matched);
    std::fflush(stdout);
    const struct {
      const char* mode;
      const Outcome* out;
    } emitted[] = {{"fundex_simple", &simple},
                   {"fundex_representative", &repr},
                   {"inline", &inl}};
    for (const auto& [mode, out] : emitted) {
      report.AddRow()
          .Num("documents", static_cast<double>(2 * pubs))
          .Str("mode", mode)
          .Num("query_s", out->query_s)
          .Num("publish_s", out->publish_s)
          .Num("matched", static_cast<double>(out->matched))
          .Num("rev_lookups", static_cast<double>(out->rev_lookups));
    }
  }
  report.Write();
  std::printf(
      "\nPaper shape: times grow with the collection; in-lining is the\n"
      "cheapest at query time, Fundex-simple pays the Rev-relation\n"
      "round-trips, the representative index avoids them at the cost of\n"
      "precision (extra candidate documents).\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
