// Reproduces Figure 7: normalized data volume of the Bloom-filter-based
// query strategies for the paper's three queries. The volume is broken
// down into shipped postings, AB filters and DB filters, normalized by
// the cost of the conventional strategy (ship every full list).
//
//   (a) //article[. contains "Ullman"]       — DB Reducer wins (~0.1);
//                                              AB Reducer costs > 1.
//   (b) //article//author[. contains "Ullman"] — all save; DB still best.
//   (c) //article[//title]//author[. contains "Ullman"] — the title branch
//       ruins all three; the Sub-query Reducer (DB on the selective path,
//       title shipped entire) restores ~70% savings.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace kadop {
namespace {

using query::QueryStrategy;

struct Row {
  const char* label;
  QueryStrategy strategy;
};

void Run() {
  bench::Banner("FIG 7", "normalized data volume of Bloom strategies");
  bench::BenchReport report("fig7_reducers",
                            "normalized data volume of Bloom strategies");
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 4 << 20;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 64;
  opt.enable_dpp = false;  // flat lists isolate the filtering effect
  core::KadopNet net(opt);
  net.PublishAndWait(0, bench::Ptrs(docs));

  struct QuerySpec {
    const char* figure;
    const char* expr;
    bool with_subquery;
  };
  const QuerySpec queries[] = {
      {"7(a)", "//article[. contains \"Ullman\"]", false},
      {"7(b)", "//article//author[. contains \"Ullman\"]", false},
      {"7(c)", "//article[//title]//author[. contains \"Ullman\"]", true},
  };

  for (const QuerySpec& spec : queries) {
    std::printf("\nFigure %s: %s\n", spec.figure, spec.expr);
    std::printf("%-22s%12s%12s%12s%12s%10s\n", "strategy", "normalized",
                "postings", "AB filt", "DB filt", "answers");
    std::vector<Row> rows = {
        {"AB Reducer", QueryStrategy::kAbReducer},
        {"DB Reducer", QueryStrategy::kDbReducer},
        {"Bloom Reducer", QueryStrategy::kBloomReducer},
    };
    if (spec.with_subquery) {
      rows.push_back({"Sub-query Reducer", QueryStrategy::kSubQueryReducer});
    }
    for (const Row& row : rows) {
      query::QueryOptions qopt;
      qopt.strategy = row.strategy;
      auto result = net.QueryAndWait(1, spec.expr, qopt);
      if (!result.ok()) {
        std::printf("%-22s query failed: %s\n", row.label,
                    result.status().ToString().c_str());
        continue;
      }
      const query::QueryMetrics& m = result.value().metrics;
      const double denom =
          static_cast<double>(m.full_postings) * index::Posting::kWireBytes;
      std::printf("%-22s%12.3f%12.3f%12.3f%12.3f%10zu\n", row.label,
                  m.NormalizedDataVolume(),
                  static_cast<double>(m.posting_bytes) / denom,
                  static_cast<double>(m.ab_filter_bytes) / denom,
                  static_cast<double>(m.db_filter_bytes) / denom,
                  result.value().answers.size());
      std::fflush(stdout);
      report.AddRow()
          .Str("figure", spec.figure)
          .Str("query", spec.expr)
          .Str("strategy", row.label)
          .Num("normalized_volume", m.NormalizedDataVolume())
          .Num("posting_fraction",
               static_cast<double>(m.posting_bytes) / denom)
          .Num("ab_filter_fraction",
               static_cast<double>(m.ab_filter_bytes) / denom)
          .Num("db_filter_fraction",
               static_cast<double>(m.db_filter_bytes) / denom)
          .Num("answers", static_cast<double>(result.value().answers.size()));
    }
  }
  report.Write();
  std::printf(
      "\nPaper shape: (a) DB ~0.08, Bloom ~0.6, AB ~1.85; (b) DB ~0.1,\n"
      "Bloom ~0.3, AB ~0.55; (c) all ~1 or worse, Sub-query ~0.3.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
