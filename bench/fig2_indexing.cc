// Reproduces Figure 2: total publishing (indexing) time as a function of
// the total published data volume, for several network sizes and publisher
// counts, with and without the DPP.
//
// Paper setup: 250-1000 MB of DBLP fragments on Grid5000.  Here volumes are
// scaled down ~1:60 (simulated network, same shapes):
//   - publication scales linearly in the data size;
//   - growing the network 200 -> 500 peers adds negligible cost (locate()
//     is cheap);
//   - enabling DPP adds negligible overhead (block splits are cheap);
//   - many publishers cut indexing time drastically.

#include <cstdio>

#include "bench/bench_util.h"
#include "index/codec.h"

namespace kadop {
namespace {

using bench::Banner;
using bench::Mb;

struct Config {
  const char* label;
  size_t publishers;
  size_t peers;
  bool dpp;
};

void Run() {
  Banner("FIG 2", "indexing time vs published volume");
  bench::BenchReport report("fig2_indexing",
                            "indexing time vs published volume");
  const Config configs[] = {
      {"1 publisher, 200 peers", 1, 200, false},
      {"1 publisher, 500 peers", 1, 500, false},
      {"1 publisher, 500 peers (with DPP)", 1, 500, true},
      {"25 publishers, 500 peers", 25, 500, false},
      {"50 publishers, 500 peers", 50, 500, false},
  };
  const size_t volumes_mb[] = {4, 8, 12, 16};

  std::printf("%-36s", "published data (scaled MB)");
  for (size_t mb : volumes_mb) std::printf("%10zu", mb);
  std::printf("\n");

  for (const Config& config : configs) {
    std::printf("%-36s", config.label);
    for (size_t mb : volumes_mb) {
      xml::corpus::DblpOptions copt;
      copt.target_bytes = mb << 20;
      auto docs = xml::corpus::GenerateDblp(copt);

      core::KadopOptions opt;
      opt.peers = config.peers;
      opt.enable_dpp = config.dpp;
      core::KadopNet net(opt);
      double elapsed;
      if (config.publishers == 1) {
        elapsed = net.PublishAndWait(0, bench::Ptrs(docs));
      } else {
        elapsed = net.ParallelPublishAndWait(bench::SplitAcrossPublishers(
            docs, config.publishers, config.peers));
      }
      std::printf("%9.2fs", elapsed);
      std::fflush(stdout);
      report.AddRow()
          .Str("config", config.label)
          .Num("publishers", static_cast<double>(config.publishers))
          .Num("peers", static_cast<double>(config.peers))
          .Num("dpp", config.dpp ? 1 : 0)
          .Num("published_mb", static_cast<double>(mb))
          .Num("indexing_time_s", elapsed);
    }
    std::printf("\n");
  }
  // Codec A/B: publish the same corpus with the posting codec off and on.
  // Postings travel group-delta + varint encoded (kPublish traffic drops)
  // while indexing time stays on the same linear shape.
  std::printf("\n%-36s%12s%16s\n", "codec A/B (1 pub, 200 peers)",
              "time (s)", "publish MB");
  std::vector<size_t> ab_volumes_mb = {4, 16};
  if (bench::QuickMode()) ab_volumes_mb = {4};
  for (size_t mb : ab_volumes_mb) {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = mb << 20;
    auto docs = xml::corpus::GenerateDblp(copt);
    for (bool codec_on : {false, true}) {
      index::codec::SetCompressionEnabled(codec_on);
      core::KadopOptions opt;
      opt.peers = 200;
      core::KadopNet net(opt);
      const double elapsed = net.PublishAndWait(0, bench::Ptrs(docs));
      const double publish_mb =
          Mb(net.network().traffic().CategoryBytes(
              sim::TrafficCategory::kPublish));
      std::printf("%4zu MB, codec %-21s%11.2fs%15.2f\n", mb,
                  codec_on ? "on" : "off", elapsed, publish_mb);
      std::fflush(stdout);
      report.AddRow()
          .Str("config", "codec_ab")
          .Num("publishers", 1)
          .Num("peers", 200)
          .Num("codec", codec_on ? 1 : 0)
          .Num("published_mb", static_cast<double>(mb))
          .Num("indexing_time_s", elapsed)
          .Num("publish_traffic_mb", publish_mb);
    }
    index::codec::SetCompressionEnabled(false);
  }
  report.Write();
  std::printf(
      "\nPaper shape: linear growth; 200 vs 500 peers ~equal; DPP overhead\n"
      "negligible; 25/50 publishers drastically lower. Codec on cuts\n"
      "publish traffic without changing the indexing-time shape.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
