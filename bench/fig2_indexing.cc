// Reproduces Figure 2: total publishing (indexing) time as a function of
// the total published data volume, for several network sizes and publisher
// counts, with and without the DPP.
//
// Paper setup: 250-1000 MB of DBLP fragments on Grid5000.  Here volumes are
// scaled down ~1:60 (simulated network, same shapes):
//   - publication scales linearly in the data size;
//   - growing the network 200 -> 500 peers adds negligible cost (locate()
//     is cheap);
//   - enabling DPP adds negligible overhead (block splits are cheap);
//   - many publishers cut indexing time drastically.

#include <cstdio>

#include "bench/bench_util.h"

namespace kadop {
namespace {

using bench::Banner;
using bench::Mb;

struct Config {
  const char* label;
  size_t publishers;
  size_t peers;
  bool dpp;
};

void Run() {
  Banner("FIG 2", "indexing time vs published volume");
  bench::BenchReport report("fig2_indexing",
                            "indexing time vs published volume");
  const Config configs[] = {
      {"1 publisher, 200 peers", 1, 200, false},
      {"1 publisher, 500 peers", 1, 500, false},
      {"1 publisher, 500 peers (with DPP)", 1, 500, true},
      {"25 publishers, 500 peers", 25, 500, false},
      {"50 publishers, 500 peers", 50, 500, false},
  };
  const size_t volumes_mb[] = {4, 8, 12, 16};

  std::printf("%-36s", "published data (scaled MB)");
  for (size_t mb : volumes_mb) std::printf("%10zu", mb);
  std::printf("\n");

  for (const Config& config : configs) {
    std::printf("%-36s", config.label);
    for (size_t mb : volumes_mb) {
      xml::corpus::DblpOptions copt;
      copt.target_bytes = mb << 20;
      auto docs = xml::corpus::GenerateDblp(copt);

      core::KadopOptions opt;
      opt.peers = config.peers;
      opt.enable_dpp = config.dpp;
      core::KadopNet net(opt);
      double elapsed;
      if (config.publishers == 1) {
        elapsed = net.PublishAndWait(0, bench::Ptrs(docs));
      } else {
        elapsed = net.ParallelPublishAndWait(bench::SplitAcrossPublishers(
            docs, config.publishers, config.peers));
      }
      std::printf("%9.2fs", elapsed);
      std::fflush(stdout);
      report.AddRow()
          .Str("config", config.label)
          .Num("publishers", static_cast<double>(config.publishers))
          .Num("peers", static_cast<double>(config.peers))
          .Num("dpp", config.dpp ? 1 : 0)
          .Num("published_mb", static_cast<double>(mb))
          .Num("indexing_time_s", elapsed);
    }
    std::printf("\n");
  }
  report.Write();
  std::printf(
      "\nPaper shape: linear growth; 200 vs 500 peers ~equal; DPP overhead\n"
      "negligible; 25/50 publishers drastically lower.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
