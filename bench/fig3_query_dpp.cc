// Reproduces Figure 3: index-query response time for
// //article//author//"Ullman" as the indexed volume grows, with and
// without the DPP.
//
// The query deliberately touches `author`, one of the longest posting
// lists (the paper calls it "a stress test for our approach"). Without the
// DPP the transfer of the author list is bound by its single owner's
// uplink and grows linearly; with the DPP the list is range-partitioned
// across peers and fetched in parallel, so response time is cut by a
// factor of ~3-4 and grows much more slowly.
//
// On top of the paper's figure this bench runs two A/Bs per volume:
// the codec/cache A/B (posting compression on: same seed, same answers,
// >= 2x fewer posting bytes on the wire; warm posting cache: the repeat
// query issues zero Get messages) and the distributed-join A/B (kDppJoin
// ships structural joins to the block holders, so the query peer's
// posting ingress collapses to result tuples — same answers, byte for
// byte), plus a materialized-view run (the query pattern pre-joined into
// an extent, so serving fetches only the answer columns).

#include <cstdio>

#include "bench/bench_util.h"

namespace kadop {
namespace {

constexpr const char* kQuery = "//article//author//\"Ullman\"";

struct Sample {
  double response = -1;
  double first_answer = 0;
  uint64_t posting_wire = 0;   // kPosting wire bytes for the (first) query
  uint64_t ingress_wire = 0;   // query-peer posting ingress (metrics view)
  uint64_t join_tasks = 0;
  uint64_t repeat_gets = 0;    // Get messages served during the cached repeat
  uint64_t repeat_cache_hits = 0;
  std::vector<query::Answer> answers;
  std::vector<index::DocId> matched_docs;
};

Sample RunOne(size_t mb, query::QueryStrategy strategy, bool compress,
              bool repeat_cached) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = mb << 20;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 200;
  opt.enable_dpp = strategy != query::QueryStrategy::kBaseline;
  opt.views.enabled = strategy == query::QueryStrategy::kView;
  core::KadopNet net(opt);
  net.PublishAndWait(0, bench::Ptrs(docs));
  if (strategy == query::QueryStrategy::kView) {
    auto created = net.CreateViewAndWait(kQuery, "fig3");
    if (!created.ok()) {
      std::fprintf(stderr, "view materialization failed: %s\n",
                   created.status().ToString().c_str());
      return {};
    }
  }

  query::QueryOptions qopt;
  qopt.strategy = strategy;
  qopt.dpp_join_available = strategy == query::QueryStrategy::kDppJoin;
  qopt.compress = compress;
  qopt.cache_postings = repeat_cached;

  Sample out;
  const uint64_t wire_before =
      net.network().traffic().CategoryBytes(sim::TrafficCategory::kPosting);
  auto result = net.QueryAndWait(1, kQuery, qopt);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return out;
  }
  out.response = result.value().metrics.ResponseTime();
  out.first_answer = result.value().metrics.TimeToFirstAnswer();
  out.ingress_wire = result.value().metrics.posting_wire_bytes;
  out.join_tasks = result.value().metrics.join_tasks;
  out.answers = result.value().answers;
  out.matched_docs = result.value().matched_docs;
  out.posting_wire =
      net.network().traffic().CategoryBytes(sim::TrafficCategory::kPosting) -
      wire_before;

  if (repeat_cached) {
    const uint64_t gets_before = net.dht().AggregateStats().gets_served;
    auto repeat = net.QueryAndWait(1, kQuery, qopt);
    if (repeat.ok()) {
      out.repeat_gets = net.dht().AggregateStats().gets_served - gets_before;
      out.repeat_cache_hits = repeat.value().metrics.cache_hits;
    }
  }
  return out;
}

void Run() {
  bench::Banner("FIG 3", "query response time with/without DPP");
  bench::BenchReport report("fig3_query_dpp",
                            "query response time with/without DPP, plus "
                            "posting codec and cache A/B");
  std::printf("query: %s\n\n", kQuery);
  std::printf("%-28s%14s%14s%16s%12s%14s%14s%14s\n",
              "indexed data (scaled MB)", "no DPP (s)", "DPP (s)",
              "DPP 1st ans (s)", "speedup", "wire raw KB", "wire enc KB",
              "djoin (s)");
  std::vector<size_t> volumes_mb = {2, 4, 8, 16, 24};
  if (bench::QuickMode()) volumes_mb = {2};
  for (size_t mb : volumes_mb) {
    // Paper trajectory (compression off), with a warm-cache repeat on the
    // DPP run; then the same DPP run with the codec on, and once more
    // with the join pushed to the block holders.
    const Sample base = RunOne(mb, query::QueryStrategy::kBaseline,
                               /*compress=*/false, /*repeat_cached=*/false);
    const Sample dpp = RunOne(mb, query::QueryStrategy::kDpp,
                              /*compress=*/false, /*repeat_cached=*/true);
    const Sample dppc = RunOne(mb, query::QueryStrategy::kDpp,
                               /*compress=*/true, /*repeat_cached=*/false);
    const Sample djoin = RunOne(mb, query::QueryStrategy::kDppJoin,
                                /*compress=*/false, /*repeat_cached=*/false);
    const Sample view = RunOne(mb, query::QueryStrategy::kView,
                               /*compress=*/false, /*repeat_cached=*/false);
    const double wire_reduction =
        dppc.posting_wire > 0
            ? static_cast<double>(dpp.posting_wire) /
                  static_cast<double>(dppc.posting_wire)
            : 0.0;
    // Query-peer posting ingress: kDppJoin receives result tuples instead
    // of posting blocks, so its ingress is normally zero — clamp the
    // denominator so the emitted ratio stays finite.
    const double join_wire_reduction =
        static_cast<double>(dpp.ingress_wire) /
        static_cast<double>(std::max<uint64_t>(1, djoin.ingress_wire));
    const bool join_answers_match = dpp.answers == djoin.answers &&
                                    dpp.matched_docs == djoin.matched_docs;
    std::printf("%-28zu%14.4f%14.4f%16.4f%11.2fx%14.1f%14.1f%14.4f\n", mb,
                base.response, dpp.response, dpp.first_answer,
                base.response / dpp.response,
                static_cast<double>(dpp.posting_wire) / 1024.0,
                static_cast<double>(dppc.posting_wire) / 1024.0,
                djoin.response);
    std::fflush(stdout);
    report.AddRow()
        .Num("indexed_mb", static_cast<double>(mb))
        .Num("baseline_response_s", base.response)
        .Num("dpp_response_s", dpp.response)
        .Num("dpp_first_answer_s", dpp.first_answer)
        .Num("speedup", base.response / dpp.response)
        .Num("posting_wire_raw_kb",
             static_cast<double>(dpp.posting_wire) / 1024.0)
        .Num("posting_wire_encoded_kb",
             static_cast<double>(dppc.posting_wire) / 1024.0)
        .Num("wire_reduction", wire_reduction)
        .Num("answers_match", dpp.answers == dppc.answers ? 1.0 : 0.0)
        .Num("repeat_cache_gets", static_cast<double>(dpp.repeat_gets))
        .Num("repeat_cache_hits",
             static_cast<double>(dpp.repeat_cache_hits))
        .Num("dpp_join_response_s", djoin.response)
        .Num("dpp_join_first_answer_s", djoin.first_answer)
        .Num("dpp_ingress_wire_kb",
             static_cast<double>(dpp.ingress_wire) / 1024.0)
        .Num("dpp_join_ingress_wire_kb",
             static_cast<double>(djoin.ingress_wire) / 1024.0)
        .Num("join_wire_reduction", join_wire_reduction)
        .Num("join_tasks", static_cast<double>(djoin.join_tasks))
        .Num("join_answers_match", join_answers_match ? 1.0 : 0.0)
        .Num("view_response_s", view.response)
        .Num("view_first_answer_s", view.first_answer)
        .Num("view_ingress_wire_kb",
             static_cast<double>(view.ingress_wire) / 1024.0)
        .Num("view_answers_match",
             dpp.answers == view.answers &&
                     dpp.matched_docs == view.matched_docs
                 ? 1.0
                 : 0.0);
  }
  report.Write();
  std::printf(
      "\nPaper shape: DPP cuts response time by ~3x and its growth with\n"
      "data volume is much slower (transfer parallelized across block\n"
      "holders instead of a single owner uplink).\n"
      "Codec A/B: compress=on moves the same answers in >= 2x fewer\n"
      "posting bytes; the warm-cache repeat query issues zero Gets.\n"
      "Join A/B: dpp_join pushes the structural join to the block\n"
      "holders — byte-identical answers with (near-)zero posting ingress\n"
      "at the query peer.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
