// Reproduces Figure 3: index-query response time for
// //article//author//"Ullman" as the indexed volume grows, with and
// without the DPP.
//
// The query deliberately touches `author`, one of the longest posting
// lists (the paper calls it "a stress test for our approach"). Without the
// DPP the transfer of the author list is bound by its single owner's
// uplink and grows linearly; with the DPP the list is range-partitioned
// across peers and fetched in parallel, so response time is cut by a
// factor of ~3-4 and grows much more slowly.

#include <cstdio>

#include "bench/bench_util.h"

namespace kadop {
namespace {

constexpr const char* kQuery = "//article//author//\"Ullman\"";

double RunOne(size_t mb, bool with_dpp, query::QueryMetrics* metrics) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = mb << 20;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 200;
  opt.enable_dpp = with_dpp;
  core::KadopNet net(opt);
  net.PublishAndWait(0, bench::Ptrs(docs));

  query::QueryOptions qopt;
  qopt.strategy = with_dpp ? query::QueryStrategy::kDpp
                           : query::QueryStrategy::kBaseline;
  auto result = net.QueryAndWait(1, kQuery, qopt);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return -1;
  }
  *metrics = result.value().metrics;
  return result.value().metrics.ResponseTime();
}

void Run() {
  bench::Banner("FIG 3", "query response time with/without DPP");
  bench::BenchReport report("fig3_query_dpp",
                            "query response time with/without DPP");
  std::printf("query: %s\n\n", kQuery);
  std::printf("%-28s%14s%14s%16s%12s\n", "indexed data (scaled MB)",
              "no DPP (s)", "DPP (s)", "DPP 1st ans (s)", "speedup");
  std::vector<size_t> volumes_mb = {2, 4, 8, 16, 24};
  if (bench::QuickMode()) volumes_mb = {2};
  for (size_t mb : volumes_mb) {
    query::QueryMetrics base, dpp;
    const double without = RunOne(mb, false, &base);
    const double with = RunOne(mb, true, &dpp);
    std::printf("%-28zu%14.4f%14.4f%16.4f%11.2fx\n", mb, without, with,
                dpp.TimeToFirstAnswer(), without / with);
    std::fflush(stdout);
    report.AddRow()
        .Num("indexed_mb", static_cast<double>(mb))
        .Num("baseline_response_s", without)
        .Num("dpp_response_s", with)
        .Num("dpp_first_answer_s", dpp.TimeToFirstAnswer())
        .Num("speedup", without / with);
  }
  report.Write();
  std::printf(
      "\nPaper shape: DPP cuts response time by ~3x and its growth with\n"
      "data volume is much slower (transfer parallelized across block\n"
      "holders instead of a single owner uplink).\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
