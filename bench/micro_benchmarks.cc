// Google-benchmark micro suite for the core data structures and
// algorithms: B+-tree, Bloom filters, dyadic decomposition, structural
// joins, twig join, XML parsing/extraction, DHT routing, and the posting
// codec. The main() additionally emits BENCH_codec.json (encode/decode
// throughput and the achieved compression ratio on fig2's DBLP document
// mix) for the CI bench-emit job.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <optional>

#include "bench/bench_util.h"
#include "bloom/structural_filter.h"
#include "common/random.h"
#include "dht/dht.h"
#include "dht/ring.h"
#include "index/codec.h"
#include "index/structural_join.h"
#include "obs/profile_clock.h"
#include "index/terms.h"
#include "query/iterator.h"
#include "query/twig_join.h"
#include "query/twig_stack.h"
#include "store/bplus_tree.h"
#include "xml/corpus.h"
#include "xml/parser.h"

namespace kadop {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    store::BPlusTree<uint64_t, uint64_t> tree;
    Rng rng(1);
    for (int i = 0; i < n; ++i) {
      (void)tree.InsertOrAssign(rng.Next(), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreeLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  store::BPlusTree<uint64_t, uint64_t> tree;
  Rng rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < n; ++i) {
    keys.push_back(rng.Next());
    (void)tree.InsertOrAssign(keys.back(), i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(10000)->Arg(100000);

void BM_BPlusTreeScan(benchmark::State& state) {
  store::BPlusTree<uint64_t, uint64_t> tree;
  for (uint64_t i = 0; i < 100000; ++i) (void)tree.InsertOrAssign(i, i);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (auto it = tree.Begin(); it.Valid(); it.Next()) sum += it.value();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BPlusTreeScan);

void BM_BloomInsert(benchmark::State& state) {
  for (auto _ : state) {
    bloom::BloomFilter filter(100000, 0.01);
    for (uint64_t i = 0; i < 100000; ++i) filter.Insert(i * 0x9e3779b9);
    benchmark::DoNotOptimize(filter.inserted());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BloomInsert);

void BM_BloomProbe(benchmark::State& state) {
  bloom::BloomFilter filter(100000, 0.01);
  for (uint64_t i = 0; i < 100000; ++i) filter.Insert(i * 0x9e3779b9);
  uint64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MaybeContains(q++ * 0x51ed2701));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe);

void BM_DyadicCover(benchmark::State& state) {
  Rng rng(3);
  const int l = 20;
  for (auto _ : state) {
    const uint32_t x =
        static_cast<uint32_t>(rng.UniformRange(1, (1 << l) - 64));
    const uint32_t y =
        static_cast<uint32_t>(x + rng.Uniform(64));
    benchmark::DoNotOptimize(bloom::DyadicCover(x, y, l));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DyadicCover);

index::PostingList MakeNestedList(size_t n) {
  index::PostingList out;
  uint32_t counter = 1;
  uint32_t doc = 0;
  while (out.size() < n) {
    // Small 3-level documents.
    const uint32_t a = counter++;
    const uint32_t b = counter++;
    out.push_back({0, doc, {b, static_cast<uint32_t>(counter++), 2}});
    out.push_back({0, doc, {a, static_cast<uint32_t>(counter++), 1}});
    if (counter > 1000) {
      counter = 1;
      ++doc;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void BM_StructuralSemiJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  index::PostingList list = MakeNestedList(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index::DescendantSemiJoin(list, list));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StructuralSemiJoin)->Arg(10000)->Arg(100000);

void BM_AbfBuild(benchmark::State& state) {
  index::PostingList list = MakeNestedList(50000);
  bloom::StructuralFilterParams params;
  params.levels = 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bloom::AncestorBloomFilter::Build(list, params));
  }
  state.SetItemsProcessed(state.iterations() * list.size());
}
BENCHMARK(BM_AbfBuild);

void BM_XmlParse(benchmark::State& state) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 64 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  const std::string text = xml::SerializeDocument(docs[0]);
  for (auto _ : state) {
    auto doc = xml::ParseDocument(text);
    benchmark::DoNotOptimize(doc.ok());
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_XmlParse);

void BM_ExtractTerms(benchmark::State& state) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 64 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  for (auto _ : state) {
    std::vector<index::TermPosting> postings;
    index::ExtractTerms(docs[0], 0, 0, {}, postings);
    benchmark::DoNotOptimize(postings.size());
  }
}
BENCHMARK(BM_ExtractTerms);

void BM_TwigJoin(benchmark::State& state) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 256 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  auto pattern = query::ParsePattern("//article//author").take();
  std::vector<index::PostingList> streams(pattern.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    std::vector<index::TermPosting> postings;
    index::ExtractTerms(docs[d], 0, static_cast<uint32_t>(d), {}, postings);
    for (const auto& tp : postings) {
      for (size_t q = 0; q < pattern.size(); ++q) {
        if (tp.key == pattern.node(q).TermKey()) {
          streams[q].push_back(tp.posting);
        }
      }
    }
  }
  size_t total = 0;
  for (auto& s : streams) {
    std::sort(s.begin(), s.end());
    total += s.size();
  }
  for (auto _ : state) {
    query::TwigJoin join(pattern);
    for (size_t q = 0; q < pattern.size(); ++q) {
      join.Append(q, streams[q]);
      join.Close(q);
    }
    join.Advance();
    benchmark::DoNotOptimize(join.answers().size());
  }
  state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_TwigJoin);

/// Per-term streams for `pattern` over a DBLP corpus of `target_bytes`,
/// sorted into canonical posting order — the twig join's input shape.
std::vector<index::PostingList> TwigStreams(const query::TreePattern& pattern,
                                            size_t target_bytes) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = target_bytes;
  auto docs = xml::corpus::GenerateDblp(opt);
  std::vector<index::PostingList> streams(pattern.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    std::vector<index::TermPosting> postings;
    index::ExtractTerms(docs[d], 0, static_cast<uint32_t>(d), {}, postings);
    for (const auto& tp : postings) {
      for (size_t q = 0; q < pattern.size(); ++q) {
        if (tp.key == pattern.node(q).TermKey()) {
          streams[q].push_back(tp.posting);
        }
      }
    }
  }
  for (auto& s : streams) std::sort(s.begin(), s.end());
  return streams;
}

/// Splits the streams into per-document candidate vectors — the unit the
/// join kernel (prune + enumerate) operates on.
std::vector<std::vector<index::PostingList>> PerDocCandidates(
    const std::vector<index::PostingList>& streams) {
  std::map<index::DocId, std::vector<index::PostingList>> by_doc;
  for (size_t q = 0; q < streams.size(); ++q) {
    for (const auto& p : streams[q]) {
      auto& cands = by_doc[p.doc_id()];
      cands.resize(streams.size());
      cands[q].push_back(p);
    }
  }
  std::vector<std::vector<index::PostingList>> docs;
  docs.reserve(by_doc.size());
  for (auto& [doc, cands] : by_doc) {
    cands.resize(streams.size());
    docs.push_back(std::move(cands));
  }
  return docs;
}

void BM_TwigJoinPrune(benchmark::State& state) {
  auto pattern = query::ParsePattern("//article//author").take();
  const auto docs = PerDocCandidates(TwigStreams(pattern, 256 << 10));
  size_t postings = 0;
  for (const auto& d : docs) {
    for (const auto& c : d) postings += c.size();
  }
  for (auto _ : state) {
    size_t matched = 0;
    for (const auto& d : docs) {
      auto cands = d;  // PruneCandidates mutates its input
      if (query::internal::PruneCandidates(pattern, cands)) ++matched;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(postings));
}
BENCHMARK(BM_TwigJoinPrune);

void BM_TwigJoinEnumerate(benchmark::State& state) {
  auto pattern = query::ParsePattern("//article//author").take();
  auto docs = PerDocCandidates(TwigStreams(pattern, 256 << 10));
  // Prune once up front; enumeration runs on surviving candidates only,
  // isolating the assignment-expansion cost.
  std::vector<std::pair<index::DocId, std::vector<index::PostingList>>>
      pruned;
  for (auto& d : docs) {
    const index::DocId doc = [&] {
      for (const auto& c : d) {
        if (!c.empty()) return c.front().doc_id();
      }
      return index::DocId{};
    }();
    if (query::internal::PruneCandidates(pattern, d)) {
      pruned.emplace_back(doc, std::move(d));
    }
  }
  for (auto _ : state) {
    size_t total = 0;
    std::vector<query::Answer> answers;
    for (const auto& [doc, cands] : pruned) {
      total += query::internal::EnumerateMatches(pattern, doc, cands,
                                                 1 << 20, answers);
    }
    benchmark::DoNotOptimize(total);
    answers.clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pruned.size()));
}
BENCHMARK(BM_TwigJoinEnumerate);

void BM_TwigJoinBlockAppend(benchmark::State& state) {
  // Feeds the join network-style: many small blocks per stream, moved in.
  // This is the path the FetchStream copy elimination targets.
  const size_t block_postings = static_cast<size_t>(state.range(0));
  auto pattern = query::ParsePattern("//article//author").take();
  const auto streams = TwigStreams(pattern, 256 << 10);
  std::vector<std::vector<index::PostingList>> blocks(streams.size());
  size_t total = 0;
  for (size_t q = 0; q < streams.size(); ++q) {
    total += streams[q].size();
    for (size_t i = 0; i < streams[q].size(); i += block_postings) {
      const size_t end = std::min(i + block_postings, streams[q].size());
      blocks[q].emplace_back(streams[q].begin() + i, streams[q].begin() + end);
    }
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto arriving = blocks;  // fresh copies to move from, off the clock
    state.ResumeTiming();
    query::TwigJoin join(pattern);
    for (size_t q = 0; q < arriving.size(); ++q) {
      for (auto& b : arriving[q]) {
        join.Append(q, std::move(b));
        join.Advance();
      }
      join.Close(q);
    }
    join.Advance();
    benchmark::DoNotOptimize(join.answers().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(total));
}
BENCHMARK(BM_TwigJoinBlockAppend)->Arg(64)->Arg(512);

void BM_TwigStackKernel(benchmark::State& state) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 256 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  auto pattern =
      query::ParsePattern("//article//author[. contains 'ullman']").take();
  std::vector<index::PostingList> streams(pattern.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    std::vector<index::TermPosting> postings;
    index::ExtractTerms(docs[d], 0, static_cast<uint32_t>(d), {}, postings);
    for (const auto& tp : postings) {
      for (size_t q = 0; q < pattern.size(); ++q) {
        if (tp.key == pattern.node(q).TermKey()) {
          streams[q].push_back(tp.posting);
        }
      }
    }
  }
  size_t total = 0;
  for (auto& s : streams) {
    std::sort(s.begin(), s.end());
    total += s.size();
  }
  for (auto _ : state) {
    query::TwigStackJoin join(pattern);
    benchmark::DoNotOptimize(join.Run(streams).size());
  }
  state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_TwigStackKernel);

/// fig2's document mix as per-term sorted posting lists — the data the
/// codec sees on the wire and in B+-tree leaves.
std::vector<index::PostingList> DblpTermLists(size_t target_bytes) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = target_bytes;
  auto docs = xml::corpus::GenerateDblp(opt);
  std::map<std::string, index::PostingList> by_term;
  for (size_t d = 0; d < docs.size(); ++d) {
    std::vector<index::TermPosting> postings;
    index::ExtractTerms(docs[d], 0, static_cast<uint32_t>(d), {}, postings);
    for (const auto& tp : postings) by_term[tp.key].push_back(tp.posting);
  }
  std::vector<index::PostingList> lists;
  lists.reserve(by_term.size());
  for (auto& [key, list] : by_term) {
    std::sort(list.begin(), list.end());
    lists.push_back(std::move(list));
  }
  return lists;
}

/// One encoded block's reusable ingredients: PostingBlock is move-only,
/// so benches keep the shared bytes + exact bounds and restamp cheap
/// PostingBlock views per iteration.
struct EncodedChunk {
  std::shared_ptr<const std::vector<uint8_t>> bytes;
  index::Condition bounds;
  uint64_t count = 0;
};

std::vector<EncodedChunk> EncodeChunks(const index::PostingList& list,
                                       size_t per_block) {
  std::vector<EncodedChunk> out;
  for (size_t i = 0; i < list.size(); i += per_block) {
    const size_t end = std::min(i + per_block, list.size());
    const index::PostingList chunk(list.begin() + static_cast<ptrdiff_t>(i),
                                   list.begin() + static_cast<ptrdiff_t>(end));
    out.push_back(EncodedChunk{
        std::make_shared<const std::vector<uint8_t>>(
            index::codec::EncodePostings(chunk)),
        index::Condition{chunk.front(), chunk.back()}, chunk.size()});
  }
  return out;
}

std::unique_ptr<query::PostingListIterator> MakeEncodedIterator(
    const std::vector<EncodedChunk>& chunks, query::Arena* arena) {
  auto it = std::make_unique<query::PostingListIterator>(arena);
  for (const auto& c : chunks) {
    it->Push(query::PostingBlock::FromEncoded(c.bytes, c.bounds, c.count));
  }
  it->Close();
  return it;
}

/// Best-of-`reps` wall-clock seconds for `fn` — the A/B rows compare
/// minima so one scheduler hiccup cannot fake (or hide) a speedup.
template <typename F>
double TimeBest(int reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void BM_IteratorSkipTo(benchmark::State& state) {
  const index::PostingList list = MakeNestedList(200000);
  const auto chunks = EncodeChunks(list, 256);
  const uint32_t max_doc = list.back().doc;
  constexpr size_t kProbes = 32;
  query::Arena arena;
  for (auto _ : state) {
    arena.Reset();
    auto it = MakeEncodedIterator(chunks, &arena);
    size_t found = 0;
    for (size_t i = 0; i < kProbes; ++i) {
      const auto doc =
          static_cast<uint32_t>(i * (static_cast<uint64_t>(max_doc) + 1) /
                                kProbes);
      const index::Posting target{0, doc, {0, 0, 0}};
      index::Posting out;
      if (it->SkipTo(target, &out)) ++found;
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * kProbes);
}
BENCHMARK(BM_IteratorSkipTo);

/// A clustered selective list: every 7th posting of the documents in the
/// first ~5% of `large`'s doc space. The doc-level leapfrog never touches
/// the large list's blocks past the cluster.
index::PostingList ClusteredSubset(const index::PostingList& large) {
  const uint32_t cluster_end = large.back().doc / 20;
  index::PostingList small;
  for (size_t i = 0; i < large.size(); i += 7) {
    if (large[i].doc <= cluster_end) small.push_back(large[i]);
  }
  return small;
}

void BM_IteratorIntersect(benchmark::State& state) {
  const index::PostingList large = MakeNestedList(200000);
  const index::PostingList small = ClusteredSubset(large);
  const auto large_chunks = EncodeChunks(large, 256);
  const auto small_chunks = EncodeChunks(small, 256);
  query::Arena arena;
  for (auto _ : state) {
    arena.Reset();
    std::vector<std::unique_ptr<query::IndexIterator>> children;
    children.push_back(MakeEncodedIterator(small_chunks, &arena));
    children.push_back(MakeEncodedIterator(large_chunks, &arena));
    query::IntersectIterator isect(std::move(children));
    index::Posting p;
    size_t n = 0;
    while (isect.Read(&p)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(small.size()));
}
BENCHMARK(BM_IteratorIntersect);

void BM_IteratorBatchDecode(benchmark::State& state) {
  const auto lists = DblpTermLists(256 << 10);
  std::vector<std::vector<uint8_t>> encoded;
  size_t postings = 0;
  for (const auto& l : lists) {
    encoded.push_back(index::codec::EncodePostings(l));
    postings += l.size();
  }
  query::Arena arena;
  for (auto _ : state) {
    arena.Reset();
    size_t decoded = 0;
    for (size_t i = 0; i < encoded.size(); ++i) {
      index::Posting* span =
          arena.AllocateArray<index::Posting>(lists[i].size());
      size_t n = 0;
      if (index::codec::DecodePostingsInto(encoded[i].data(),
                                           encoded[i].size(), span,
                                           lists[i].size(), &n)
              .ok()) {
        decoded += n;
      }
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(postings));
}
BENCHMARK(BM_IteratorBatchDecode);

void BM_CodecEncode(benchmark::State& state) {
  const auto lists = DblpTermLists(static_cast<size_t>(state.range(0)) << 10);
  size_t postings = 0, raw = 0;
  for (const auto& l : lists) {
    postings += l.size();
    raw += index::codec::RawBytes(l);
  }
  for (auto _ : state) {
    size_t encoded = 0;
    for (const auto& l : lists) {
      encoded += index::codec::EncodePostings(l).size();
    }
    benchmark::DoNotOptimize(encoded);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(postings));
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(raw));
}
BENCHMARK(BM_CodecEncode)->Arg(64)->Arg(512);

void BM_CodecDecode(benchmark::State& state) {
  const auto lists = DblpTermLists(static_cast<size_t>(state.range(0)) << 10);
  std::vector<std::vector<uint8_t>> encoded;
  size_t postings = 0, raw = 0;
  for (const auto& l : lists) {
    postings += l.size();
    raw += index::codec::RawBytes(l);
    encoded.push_back(index::codec::EncodePostings(l));
  }
  for (auto _ : state) {
    size_t decoded = 0;
    for (const auto& buf : encoded) {
      index::PostingList out;
      if (index::codec::DecodePostings(buf, &out).ok()) decoded += out.size();
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(postings));
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(raw));
}
BENCHMARK(BM_CodecDecode)->Arg(64)->Arg(512);

void BM_CodecEncodedBytes(benchmark::State& state) {
  // The allocation-free size walk every network/store charge runs.
  const auto lists = DblpTermLists(256 << 10);
  size_t postings = 0;
  for (const auto& l : lists) postings += l.size();
  for (auto _ : state) {
    size_t bytes = 0;
    for (const auto& l : lists) bytes += index::codec::EncodedBytes(l);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(postings));
}
BENCHMARK(BM_CodecEncodedBytes);

void BM_DhtLocate(benchmark::State& state) {
  sim::Scheduler scheduler;
  sim::Network network(&scheduler);
  dht::Dht dht_net(&scheduler, &network, {});
  dht_net.AddPeers(static_cast<size_t>(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    std::optional<sim::NodeIndex> owner;
    dht_net.peer(0)->Locate("key" + std::to_string(i++),
                            [&](sim::NodeIndex o) { owner = o; });
    scheduler.RunUntilIdle();
    benchmark::DoNotOptimize(owner);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DhtLocate)->Arg(64)->Arg(512);

// ---------------------------------------------------------------------------
// Iterator A/B rows (kind "iterator_ab"): the lazy-decode iterator tree
// against the decode-everything consumption it replaced, on identical
// inputs, with the answers compared posting-for-posting. CI
// (tools/check_bench_json.py) fails unless every row shows ratio >= 2.0
// and answers_match == 1.

/// "skipto": resolve sparse doc probes against an encoded stream. The old
/// world decodes every block, then binary-searches; the iterator answers
/// each probe from block headers and decodes only the blocks that hold a
/// result.
void EmitSkipToAbRow(bench::BenchReport& report) {
  const size_t n = bench::QuickMode() ? 60000 : 300000;
  const index::PostingList list = MakeNestedList(n);
  const auto chunks = EncodeChunks(list, 256);
  const uint32_t max_doc = list.back().doc;
  constexpr size_t kProbes = 32;
  std::vector<index::Posting> targets;
  for (size_t i = 0; i < kProbes; ++i) {
    const auto doc = static_cast<uint32_t>(
        i * (static_cast<uint64_t>(max_doc) + 1) / kProbes);
    targets.push_back(index::Posting{0, doc, {0, 0, 0}});
  }
  const int reps = bench::QuickMode() ? 3 : 5;

  std::vector<index::Posting> baseline_found;
  const double baseline_s = TimeBest(reps, [&] {
    baseline_found.clear();
    index::PostingList flat;
    flat.reserve(list.size());
    for (const auto& c : chunks) {
      index::PostingList out;
      if (index::codec::DecodePostings(*c.bytes, &out).ok()) {
        flat.insert(flat.end(), out.begin(), out.end());
      }
    }
    for (const auto& t : targets) {
      auto it = std::lower_bound(flat.begin(), flat.end(), t);
      if (it != flat.end()) baseline_found.push_back(*it);
    }
  });

  std::vector<index::Posting> iterator_found;
  uint64_t decoded = 0, skipped = 0;
  query::Arena arena;
  const double iterator_s = TimeBest(reps, [&] {
    iterator_found.clear();
    arena.Reset();
    auto it = MakeEncodedIterator(chunks, &arena);
    for (const auto& t : targets) {
      index::Posting out;
      if (it->SkipTo(t, &out)) iterator_found.push_back(out);
    }
    decoded = it->blocks_decoded();
    skipped = it->blocks_skipped_undecoded();
  });

  report.AddRow()
      .Str("kind", "iterator_ab")
      .Str("op", "skipto")
      .Num("postings", static_cast<double>(list.size()))
      .Num("blocks", static_cast<double>(chunks.size()))
      .Num("probes", static_cast<double>(kProbes))
      .Num("blocks_decoded", static_cast<double>(decoded))
      .Num("blocks_skipped_undecoded", static_cast<double>(skipped))
      .Num("baseline_ms", baseline_s * 1e3)
      .Num("iterator_ms", iterator_s * 1e3)
      .Num("ratio", iterator_s > 0 ? baseline_s / iterator_s : 0.0)
      .Num("answers_match", baseline_found == iterator_found ? 1.0 : 0.0);
}

/// "intersect": a clustered selective list against a large stream. The
/// old world decodes both sides entirely, then runs a doc-level
/// two-pointer; the galloping leapfrog never decodes the large blocks
/// past the cluster.
void EmitIntersectAbRow(bench::BenchReport& report) {
  const size_t n = bench::QuickMode() ? 60000 : 300000;
  const index::PostingList large = MakeNestedList(n);
  const index::PostingList small = ClusteredSubset(large);
  const auto large_chunks = EncodeChunks(large, 256);
  const auto small_chunks = EncodeChunks(small, 256);
  const int reps = bench::QuickMode() ? 3 : 5;

  std::vector<index::Posting> baseline_out;
  const double baseline_s = TimeBest(reps, [&] {
    baseline_out.clear();
    index::PostingList small_flat, large_flat;
    for (const auto& c : small_chunks) {
      index::PostingList out;
      if (index::codec::DecodePostings(*c.bytes, &out).ok()) {
        small_flat.insert(small_flat.end(), out.begin(), out.end());
      }
    }
    for (const auto& c : large_chunks) {
      index::PostingList out;
      if (index::codec::DecodePostings(*c.bytes, &out).ok()) {
        large_flat.insert(large_flat.end(), out.begin(), out.end());
      }
    }
    size_t j = 0;
    for (const auto& p : small_flat) {
      while (j < large_flat.size() && large_flat[j].doc_id() < p.doc_id()) {
        ++j;
      }
      if (j < large_flat.size() && large_flat[j].doc_id() == p.doc_id()) {
        baseline_out.push_back(p);
      }
    }
  });

  std::vector<index::Posting> iterator_out;
  query::Arena arena;
  const double iterator_s = TimeBest(reps, [&] {
    iterator_out.clear();
    arena.Reset();
    std::vector<std::unique_ptr<query::IndexIterator>> children;
    children.push_back(MakeEncodedIterator(small_chunks, &arena));
    children.push_back(MakeEncodedIterator(large_chunks, &arena));
    query::IntersectIterator isect(std::move(children));
    index::Posting p;
    while (isect.Read(&p)) iterator_out.push_back(p);
  });

  report.AddRow()
      .Str("kind", "iterator_ab")
      .Str("op", "intersect")
      .Num("large_postings", static_cast<double>(large.size()))
      .Num("small_postings", static_cast<double>(small.size()))
      .Num("results", static_cast<double>(iterator_out.size()))
      .Num("baseline_ms", baseline_s * 1e3)
      .Num("iterator_ms", iterator_s * 1e3)
      .Num("ratio", iterator_s > 0 ? baseline_s / iterator_s : 0.0)
      .Num("answers_match", baseline_out == iterator_out ? 1.0 : 0.0);
}

/// "batch_decode": serve a doc-range query over header-framed blocks. The
/// old world decodes every block on the heap and filters; the new path
/// reads each block's [min_doc, max_doc] header, skips blocks outside the
/// range undecoded, and batch-decodes survivors into arena scratch.
void EmitBatchDecodeAbRow(bench::BenchReport& report) {
  const size_t corpus_kb = bench::QuickMode() ? 128 : 1024;
  const auto lists = DblpTermLists(corpus_kb << 10);
  index::PostingList all;
  for (const auto& l : lists) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end());

  // Bare payloads (the pre-header wire format) and headered frames.
  std::vector<std::vector<uint8_t>> bare, framed;
  size_t max_block = 0;
  {
    index::codec::BlockEncoder enc(256);
    index::codec::SetBlockHeadersEnabled(true);
    for (size_t i = 0; i < all.size(); i += 256) {
      const size_t end = std::min(i + 256, all.size());
      for (size_t k = i; k < end; ++k) enc.Add(all[k]);
      auto block = enc.Flush();
      framed.push_back(std::move(block.bytes));
      bare.push_back(index::codec::EncodePostings(block.postings));
      max_block = std::max(max_block, block.postings.size());
    }
    index::codec::SetBlockHeadersEnabled(false);
  }

  // A doc range covering ~10% of the corpus, mid-stream.
  const uint32_t doc_lo = all.back().doc * 45 / 100;
  const uint32_t doc_hi = all.back().doc * 55 / 100;
  const auto in_range = [&](const index::Posting& p) {
    return p.doc >= doc_lo && p.doc <= doc_hi;
  };
  const int reps = bench::QuickMode() ? 3 : 5;

  std::vector<index::Posting> baseline_out;
  const double baseline_s = TimeBest(reps, [&] {
    baseline_out.clear();
    for (const auto& buf : bare) {
      index::PostingList out;
      if (index::codec::DecodePostings(buf, &out).ok()) {
        for (const auto& p : out) {
          if (in_range(p)) baseline_out.push_back(p);
        }
      }
    }
  });

  std::vector<index::Posting> batch_out;
  size_t blocks_decoded = 0;
  query::Arena arena;
  const double batch_s = TimeBest(reps, [&] {
    batch_out.clear();
    blocks_decoded = 0;
    arena.Reset();
    index::Posting* span = arena.AllocateArray<index::Posting>(max_block);
    for (const auto& buf : framed) {
      index::codec::BlockHeader header;
      size_t payload = 0;
      if (!index::codec::ParseBlockHeader(buf.data(), buf.size(), &header,
                                          &payload)
               .ok()) {
        continue;
      }
      if (header.bounds.hi.doc < doc_lo || header.bounds.lo.doc > doc_hi) {
        continue;  // header says the whole block misses the range
      }
      size_t decoded = 0;
      if (index::codec::DecodePostingsInto(buf.data() + payload,
                                           buf.size() - payload, span,
                                           max_block, &decoded)
              .ok()) {
        ++blocks_decoded;
        for (size_t i = 0; i < decoded; ++i) {
          if (in_range(span[i])) batch_out.push_back(span[i]);
        }
      }
    }
  });

  report.AddRow()
      .Str("kind", "iterator_ab")
      .Str("op", "batch_decode")
      .Num("postings", static_cast<double>(all.size()))
      .Num("blocks", static_cast<double>(framed.size()))
      .Num("blocks_decoded", static_cast<double>(blocks_decoded))
      .Num("results", static_cast<double>(batch_out.size()))
      .Num("baseline_ms", baseline_s * 1e3)
      .Num("iterator_ms", batch_s * 1e3)
      .Num("ratio", batch_s > 0 ? baseline_s / batch_s : 0.0)
      .Num("answers_match", baseline_out == batch_out ? 1.0 : 0.0);
}

/// Emits BENCH_codec.json: achieved ratio plus wall-clock encode/decode
/// throughput on fig2's DBLP mix (validated by tools/check_bench_json.py
/// in the CI bench-emit job).
void EmitCodecReport() {
  bench::BenchReport report(
      "codec", "posting codec throughput and ratio on the DBLP mix");
  const size_t corpus_kb = bench::QuickMode() ? 128 : 2048;
  const auto lists = DblpTermLists(corpus_kb << 10);
  size_t postings = 0, raw = 0, encoded_bytes = 0;
  std::vector<std::vector<uint8_t>> encoded;
  encoded.reserve(lists.size());

  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& l : lists) {
    encoded.push_back(index::codec::EncodePostings(l));
    postings += l.size();
    raw += index::codec::RawBytes(l);
    encoded_bytes += encoded.back().size();
  }
  const auto t1 = std::chrono::steady_clock::now();
  size_t decoded_postings = 0;
  for (const auto& buf : encoded) {
    index::PostingList out;
    if (index::codec::DecodePostings(buf, &out).ok()) {
      decoded_postings += out.size();
    }
  }
  const auto t2 = std::chrono::steady_clock::now();
  const double encode_s = std::chrono::duration<double>(t1 - t0).count();
  const double decode_s = std::chrono::duration<double>(t2 - t1).count();
  const double raw_mb = static_cast<double>(raw) / (1024.0 * 1024.0);

  report.AddRow()
      .Str("corpus", "dblp")
      .Num("corpus_kb", static_cast<double>(corpus_kb))
      .Num("term_lists", static_cast<double>(lists.size()))
      .Num("postings", static_cast<double>(postings))
      .Num("decoded_postings", static_cast<double>(decoded_postings))
      .Num("raw_mb", raw_mb)
      .Num("encoded_mb",
           static_cast<double>(encoded_bytes) / (1024.0 * 1024.0))
      .Num("ratio", encoded_bytes > 0
                        ? static_cast<double>(raw) /
                              static_cast<double>(encoded_bytes)
                        : 0.0)
      .Num("encode_mb_per_s", encode_s > 0 ? raw_mb / encode_s : 0.0)
      .Num("decode_mb_per_s", decode_s > 0 ? raw_mb / decode_s : 0.0);
  EmitBatchDecodeAbRow(report);
  report.Write();
}

/// Emits BENCH_twig.json: wall-clock throughput of the twig-join kernel
/// phases (semi-join prune, match enumeration, block-wise streaming) on
/// the DBLP mix (validated by tools/check_bench_json.py in CI).
void EmitTwigReport() {
  bench::BenchReport report(
      "twig", "twig join kernel phase throughput on the DBLP mix");
  const size_t corpus_kb = bench::QuickMode() ? 128 : 1024;
  auto pattern = query::ParsePattern("//article//author").take();
  const auto streams = TwigStreams(pattern, corpus_kb << 10);
  size_t postings = 0;
  for (const auto& s : streams) postings += s.size();
  auto docs = PerDocCandidates(streams);
  const size_t doc_count = docs.size();

  // Prune phase: copies are part of the measured cost in BM_TwigJoinPrune
  // but excluded here — pre-copy, then time the kernel alone.
  auto prune_input = docs;
  const auto t0 = std::chrono::steady_clock::now();
  size_t matched = 0;
  for (auto& d : prune_input) {
    if (query::internal::PruneCandidates(pattern, d)) ++matched;
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Enumeration over the pruned survivors.
  std::vector<query::Answer> answers;
  size_t enumerated = 0;
  const auto t2 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < prune_input.size(); ++i) {
    const auto& cands = prune_input[i];
    index::DocId doc{};
    bool any = false;
    for (const auto& c : cands) {
      if (!c.empty()) {
        doc = c.front().doc_id();
        any = true;
        break;
      }
    }
    if (!any) continue;
    enumerated += query::internal::EnumerateMatches(pattern, doc, cands,
                                                    1 << 20, answers);
  }
  const auto t3 = std::chrono::steady_clock::now();

  // End-to-end streaming join fed in 256-posting blocks (moved in).
  std::vector<std::vector<index::PostingList>> blocks(streams.size());
  for (size_t q = 0; q < streams.size(); ++q) {
    for (size_t i = 0; i < streams[q].size(); i += 256) {
      const size_t end = std::min(i + 256, streams[q].size());
      blocks[q].emplace_back(streams[q].begin() + i, streams[q].begin() + end);
    }
  }
  const auto t4 = std::chrono::steady_clock::now();
  query::TwigJoin join(pattern);
  for (size_t q = 0; q < blocks.size(); ++q) {
    for (auto& b : blocks[q]) {
      join.Append(q, std::move(b));
      join.Advance();
    }
    join.Close(q);
  }
  join.Advance();
  const auto t5 = std::chrono::steady_clock::now();

  const double prune_s = std::chrono::duration<double>(t1 - t0).count();
  const double enum_s = std::chrono::duration<double>(t3 - t2).count();
  const double stream_s = std::chrono::duration<double>(t5 - t4).count();
  const double postings_d = static_cast<double>(postings);
  report.AddRow()
      .Str("corpus", "dblp")
      .Str("pattern", "//article//author")
      .Num("corpus_kb", static_cast<double>(corpus_kb))
      .Num("postings", postings_d)
      .Num("documents", static_cast<double>(doc_count))
      .Num("matched_docs", static_cast<double>(matched))
      .Num("answers", static_cast<double>(enumerated))
      .Num("prune_mpostings_per_s",
           prune_s > 0 ? postings_d / prune_s / 1e6 : 0.0)
      .Num("enumerate_manswers_per_s",
           enum_s > 0 ? static_cast<double>(enumerated) / enum_s / 1e6 : 0.0)
      .Num("stream_join_mpostings_per_s",
           stream_s > 0 ? postings_d / stream_s / 1e6 : 0.0)
      .Num("stream_join_answers", static_cast<double>(join.answers().size()));
  EmitSkipToAbRow(report);
  EmitIntersectAbRow(report);
  report.Write();
}

}  // namespace
}  // namespace kadop

int main(int argc, char** argv) {
  // Micro benches measure real throughput; opt into the wall-clock
  // profiling timers so codec.encode_ns/decode_ns move. Deterministic
  // harnesses never set this, and BENCH_*.json records it via buildinfo.
  kadop::obs::SetWallClockProfiling(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  kadop::EmitCodecReport();
  kadop::EmitTwigReport();
  return 0;
}
