// Google-benchmark micro suite for the core data structures and
// algorithms: B+-tree, Bloom filters, dyadic decomposition, structural
// joins, twig join, XML parsing/extraction and DHT routing.

#include <benchmark/benchmark.h>

#include <optional>

#include "bloom/structural_filter.h"
#include "common/random.h"
#include "dht/dht.h"
#include "dht/ring.h"
#include "index/structural_join.h"
#include "index/terms.h"
#include "query/twig_join.h"
#include "query/twig_stack.h"
#include "store/bplus_tree.h"
#include "xml/corpus.h"
#include "xml/parser.h"

namespace kadop {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    store::BPlusTree<uint64_t, uint64_t> tree;
    Rng rng(1);
    for (int i = 0; i < n; ++i) {
      (void)tree.InsertOrAssign(rng.Next(), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreeLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  store::BPlusTree<uint64_t, uint64_t> tree;
  Rng rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < n; ++i) {
    keys.push_back(rng.Next());
    (void)tree.InsertOrAssign(keys.back(), i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(10000)->Arg(100000);

void BM_BPlusTreeScan(benchmark::State& state) {
  store::BPlusTree<uint64_t, uint64_t> tree;
  for (uint64_t i = 0; i < 100000; ++i) (void)tree.InsertOrAssign(i, i);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (auto it = tree.Begin(); it.Valid(); it.Next()) sum += it.value();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BPlusTreeScan);

void BM_BloomInsert(benchmark::State& state) {
  for (auto _ : state) {
    bloom::BloomFilter filter(100000, 0.01);
    for (uint64_t i = 0; i < 100000; ++i) filter.Insert(i * 0x9e3779b9);
    benchmark::DoNotOptimize(filter.inserted());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BloomInsert);

void BM_BloomProbe(benchmark::State& state) {
  bloom::BloomFilter filter(100000, 0.01);
  for (uint64_t i = 0; i < 100000; ++i) filter.Insert(i * 0x9e3779b9);
  uint64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MaybeContains(q++ * 0x51ed2701));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe);

void BM_DyadicCover(benchmark::State& state) {
  Rng rng(3);
  const int l = 20;
  for (auto _ : state) {
    const uint32_t x =
        static_cast<uint32_t>(rng.UniformRange(1, (1 << l) - 64));
    const uint32_t y =
        static_cast<uint32_t>(x + rng.Uniform(64));
    benchmark::DoNotOptimize(bloom::DyadicCover(x, y, l));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DyadicCover);

index::PostingList MakeNestedList(size_t n) {
  index::PostingList out;
  uint32_t counter = 1;
  uint32_t doc = 0;
  while (out.size() < n) {
    // Small 3-level documents.
    const uint32_t a = counter++;
    const uint32_t b = counter++;
    out.push_back({0, doc, {b, static_cast<uint32_t>(counter++), 2}});
    out.push_back({0, doc, {a, static_cast<uint32_t>(counter++), 1}});
    if (counter > 1000) {
      counter = 1;
      ++doc;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void BM_StructuralSemiJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  index::PostingList list = MakeNestedList(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index::DescendantSemiJoin(list, list));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StructuralSemiJoin)->Arg(10000)->Arg(100000);

void BM_AbfBuild(benchmark::State& state) {
  index::PostingList list = MakeNestedList(50000);
  bloom::StructuralFilterParams params;
  params.levels = 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bloom::AncestorBloomFilter::Build(list, params));
  }
  state.SetItemsProcessed(state.iterations() * list.size());
}
BENCHMARK(BM_AbfBuild);

void BM_XmlParse(benchmark::State& state) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 64 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  const std::string text = xml::SerializeDocument(docs[0]);
  for (auto _ : state) {
    auto doc = xml::ParseDocument(text);
    benchmark::DoNotOptimize(doc.ok());
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_XmlParse);

void BM_ExtractTerms(benchmark::State& state) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 64 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  for (auto _ : state) {
    std::vector<index::TermPosting> postings;
    index::ExtractTerms(docs[0], 0, 0, {}, postings);
    benchmark::DoNotOptimize(postings.size());
  }
}
BENCHMARK(BM_ExtractTerms);

void BM_TwigJoin(benchmark::State& state) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 256 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  auto pattern = query::ParsePattern("//article//author").take();
  std::vector<index::PostingList> streams(pattern.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    std::vector<index::TermPosting> postings;
    index::ExtractTerms(docs[d], 0, static_cast<uint32_t>(d), {}, postings);
    for (const auto& tp : postings) {
      for (size_t q = 0; q < pattern.size(); ++q) {
        if (tp.key == pattern.node(q).TermKey()) {
          streams[q].push_back(tp.posting);
        }
      }
    }
  }
  size_t total = 0;
  for (auto& s : streams) {
    std::sort(s.begin(), s.end());
    total += s.size();
  }
  for (auto _ : state) {
    query::TwigJoin join(pattern);
    for (size_t q = 0; q < pattern.size(); ++q) {
      join.Append(q, streams[q]);
      join.Close(q);
    }
    join.Advance();
    benchmark::DoNotOptimize(join.answers().size());
  }
  state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_TwigJoin);

void BM_TwigStackKernel(benchmark::State& state) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 256 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  auto pattern =
      query::ParsePattern("//article//author[. contains 'ullman']").take();
  std::vector<index::PostingList> streams(pattern.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    std::vector<index::TermPosting> postings;
    index::ExtractTerms(docs[d], 0, static_cast<uint32_t>(d), {}, postings);
    for (const auto& tp : postings) {
      for (size_t q = 0; q < pattern.size(); ++q) {
        if (tp.key == pattern.node(q).TermKey()) {
          streams[q].push_back(tp.posting);
        }
      }
    }
  }
  size_t total = 0;
  for (auto& s : streams) {
    std::sort(s.begin(), s.end());
    total += s.size();
  }
  for (auto _ : state) {
    query::TwigStackJoin join(pattern);
    benchmark::DoNotOptimize(join.Run(streams).size());
  }
  state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_TwigStackKernel);

void BM_DhtLocate(benchmark::State& state) {
  sim::Scheduler scheduler;
  sim::Network network(&scheduler);
  dht::Dht dht_net(&scheduler, &network, {});
  dht_net.AddPeers(static_cast<size_t>(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    std::optional<sim::NodeIndex> owner;
    dht_net.peer(0)->Locate("key" + std::to_string(i++),
                            [&](sim::NodeIndex o) { owner = o; });
    scheduler.RunUntilIdle();
    benchmark::DoNotOptimize(owner);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DhtLocate)->Arg(64)->Arg(512);

}  // namespace
}  // namespace kadop

BENCHMARK_MAIN();
