// Extension bench: a strategy/query coverage matrix over an XMark-like
// auction corpus. For each of a diverse set of queries, every evaluation
// strategy reports response time and normalized data volume, plus the
// auto optimizer's pick — a compact view of "no dominant strategy"
// (Section 5.4's conclusion) and of where the optimizer lands.

#include <cstdio>

#include "bench/bench_util.h"

namespace kadop {
namespace {

using query::QueryOptions;
using query::QueryStrategy;

void Run() {
  bench::Banner("MATRIX", "strategy coverage over an XMark-like corpus");
  bench::BenchReport report("strategy_matrix",
                            "strategy coverage over an XMark-like corpus");
  xml::corpus::SimpleCorpusOptions copt;
  copt.target_elements = 120000;
  auto docs = xml::corpus::GenerateXmark(copt);

  core::KadopOptions opt;
  opt.peers = 64;
  opt.dpp.max_block_postings = 4096;
  core::KadopNet net(opt);
  net.PublishAndWait(0, bench::Ptrs(docs));

  const char* queries[] = {
      "//item//name",                                   // two mid lists
      "//item[//mailbox]//description",                 // branching
      "//regions//item[contains(.//name,'ma')]",        // selective word
      "//person//emailaddress",                         // flat pair
      "//site[//people]//item[//parlist]//name",        // deep twig
  };
  const QueryStrategy strategies[] = {
      QueryStrategy::kBaseline,     QueryStrategy::kDpp,
      QueryStrategy::kAbReducer,    QueryStrategy::kDbReducer,
      QueryStrategy::kBloomReducer, QueryStrategy::kSubQueryReducer,
      QueryStrategy::kAuto,
  };

  for (const char* expr : queries) {
    std::printf("\n%s\n", expr);
    std::printf("  %-20s%12s%14s%10s%12s\n", "strategy", "time (s)",
                "norm volume", "answers", "ran");
    for (QueryStrategy strategy : strategies) {
      QueryOptions qopt;
      qopt.strategy = strategy;
      auto result = net.QueryAndWait(7, expr, qopt);
      if (!result.ok()) {
        std::printf("  %-20s failed: %s\n",
                    std::string(query::QueryStrategyName(strategy)).c_str(),
                    result.status().ToString().c_str());
        continue;
      }
      const auto& m = result.value().metrics;
      std::printf("  %-20s%12.4f%14.3f%10zu%12s\n",
                  std::string(query::QueryStrategyName(strategy)).c_str(),
                  m.ResponseTime(), m.NormalizedDataVolume(),
                  result.value().answers.size(),
                  std::string(
                      query::QueryStrategyName(m.effective_strategy))
                      .c_str());
      std::fflush(stdout);
      report.AddRow()
          .Str("query", expr)
          .Str("strategy",
               std::string(query::QueryStrategyName(strategy)))
          .Str("effective_strategy",
               std::string(query::QueryStrategyName(m.effective_strategy)))
          .Num("response_s", m.ResponseTime())
          .Num("normalized_volume", m.NormalizedDataVolume())
          .Num("answers", static_cast<double>(result.value().answers.size()));
    }
  }
  report.Write();
  std::printf(
      "\nTakeaway: no strategy dominates; the auto optimizer tracks the\n"
      "best (or near-best) pick per query from list sizes alone.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
