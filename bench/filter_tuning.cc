// Extension bench: how the paper's filter settings (AB basic fp = 20%,
// DB basic fp = 1%, psi constant c = 4) were chosen. For the Fig 7(b)
// query, sweep the basic false-positive rates and report the normalized
// data volume of the DB Reducer and Bloom Reducer — the trade-off between
// filter size (low fp = big filters) and filtering power (high fp = more
// spurious postings shipped).

#include <cstdio>

#include "bench/bench_util.h"

namespace kadop {
namespace {

void Run() {
  bench::Banner("TUNING", "Bloom filter parameter sweep (query of Fig 7b)");
  bench::BenchReport report("filter_tuning",
                            "Bloom filter parameter sweep (query of Fig 7b)");
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 3 << 20;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 48;
  opt.enable_dpp = false;
  core::KadopNet net(opt);
  net.PublishAndWait(0, bench::Ptrs(docs));

  const char* expr = "//article//author[. contains \"Ullman\"]";
  std::printf("query: %s\n", expr);

  std::printf("\nDB Reducer, sweeping the DB filter's basic fp rate:\n");
  std::printf("%-10s%14s%14s%14s\n", "fp", "normalized", "filters",
              "postings");
  for (double fp : {0.001, 0.01, 0.05, 0.2, 0.5}) {
    query::QueryOptions qopt;
    qopt.strategy = query::QueryStrategy::kDbReducer;
    qopt.db_params.target_fp = fp;
    auto result = net.QueryAndWait(1, expr, qopt);
    if (!result.ok()) continue;
    const auto& m = result.value().metrics;
    const double denom =
        static_cast<double>(m.full_postings) * index::Posting::kWireBytes;
    std::printf("%-10.3f%14.4f%14.4f%14.4f\n", fp,
                m.NormalizedDataVolume(),
                static_cast<double>(m.db_filter_bytes) / denom,
                static_cast<double>(m.posting_bytes) / denom);
    std::fflush(stdout);
    report.AddRow()
        .Str("sweep", "db_reducer")
        .Num("fp", fp)
        .Num("normalized_volume", m.NormalizedDataVolume())
        .Num("filter_fraction",
             static_cast<double>(m.db_filter_bytes) / denom)
        .Num("posting_fraction",
             static_cast<double>(m.posting_bytes) / denom);
  }

  std::printf(
      "\nBloom Reducer, sweeping the AB filter's basic fp rate "
      "(DB fixed at 1%%):\n");
  std::printf("%-10s%14s%14s%14s\n", "fp", "normalized", "AB filters",
              "postings");
  for (double fp : {0.01, 0.05, 0.2, 0.5}) {
    query::QueryOptions qopt;
    qopt.strategy = query::QueryStrategy::kBloomReducer;
    qopt.ab_params.target_fp = fp;
    auto result = net.QueryAndWait(1, expr, qopt);
    if (!result.ok()) continue;
    const auto& m = result.value().metrics;
    const double denom =
        static_cast<double>(m.full_postings) * index::Posting::kWireBytes;
    std::printf("%-10.3f%14.4f%14.4f%14.4f\n", fp,
                m.NormalizedDataVolume(),
                static_cast<double>(m.ab_filter_bytes) / denom,
                static_cast<double>(m.posting_bytes) / denom);
    std::fflush(stdout);
    report.AddRow()
        .Str("sweep", "bloom_reducer")
        .Num("fp", fp)
        .Num("normalized_volume", m.NormalizedDataVolume())
        .Num("filter_fraction",
             static_cast<double>(m.ab_filter_bytes) / denom)
        .Num("posting_fraction",
             static_cast<double>(m.posting_bytes) / denom);
  }
  report.Write();
  std::printf(
      "\nPaper setting: AB at fp 20%% (its conjunctive probe tolerates\n"
      "loose filters, so spend few bits), DB at 1%% (disjunctive probes\n"
      "need accuracy). The sweep shows both choices near their minima.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
