// Reproduces the Section 4.3 traffic-consumption experiment: a workload of
// 50 concurrent queries, each involving at least one long posting list,
// submitted at 50 distinct peers over a 5-minute window (one query every
// 6 seconds), against growing indexed volumes.
//
// Paper (200/400/600/800 MB indexed): 32/66/95/127 MB of traffic — linear
// in the indexed volume. The harness reports total traffic and its
// breakdown; the paper's run used the simple plan that ships all postings
// to the query peer (our baseline strategy over the DPP index).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/status.h"

namespace kadop {
namespace {

std::vector<std::string> MakeWorkload() {
  // Every query touches at least one of the long lists (author, title,
  // article, inproceedings).
  const char* frequent_words[] = {"system", "database", "query",
                                  "xml",    "graph",    "ullman"};
  std::vector<std::string> queries;
  for (int i = 0; queries.size() < 50; ++i) {
    const char* word = frequent_words[i % 6];
    switch (i % 4) {
      case 0:
        queries.push_back("//article//author");
        break;
      case 1:
        queries.push_back(std::string("//article[contains(.//title,'") +
                          word + "')]//author");
        break;
      case 2:
        queries.push_back("//inproceedings//title");
        break;
      case 3:
        queries.push_back(std::string("//article//title//\"") + word +
                          "\"");
        break;
    }
  }
  return queries;
}

void Run() {
  bench::Banner("SEC 4.3", "traffic of a 50-query workload vs indexed size");
  bench::BenchReport report(
      "traffic_workload", "traffic of a 50-query workload vs indexed size");
  std::printf("%-26s%14s%14s%14s%14s%12s\n", "indexed data (scaled MB)",
              "total (MB)", "posting (MB)", "control (MB)", "query (MB)",
              "queries ok");
  const size_t volumes_mb[] = {4, 8, 12, 16};
  const auto workload = MakeWorkload();
  for (size_t mb : volumes_mb) {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = mb << 20;
    auto docs = xml::corpus::GenerateDblp(copt);

    core::KadopOptions opt;
    opt.peers = 200;
    core::KadopNet net(opt);
    net.PublishAndWait(0, bench::Ptrs(docs));
    net.network().ResetTraffic();

    size_t completed = 0;
    const double start = net.scheduler().Now();
    for (size_t i = 0; i < workload.size(); ++i) {
      const double when = start + static_cast<double>(i) * 6.0;
      const sim::NodeIndex at = static_cast<sim::NodeIndex>(
          (i * 17 + 3) % opt.peers);
      const std::string& expr = workload[i];
      net.scheduler().At(when, [&net, &completed, at, &expr]() {
        query::QueryOptions qopt;
        qopt.strategy = query::QueryStrategy::kBaseline;
        const kadop::Status submitted =
            net.SubmitQuery(at, expr, qopt,
                            [&completed](query::QueryResult result) {
                              if (result.metrics.complete) ++completed;
                            });
        KADOP_CHECK(submitted.ok(), "workload query must parse");
      });
    }
    net.RunToIdle();

    const sim::TrafficStats& t = net.network().traffic();
    std::printf("%-26zu%14.2f%14.2f%14.2f%14.2f%9zu/50\n", mb,
                bench::Mb(t.bytes),
                bench::Mb(t.CategoryBytes(sim::TrafficCategory::kPosting)),
                bench::Mb(t.CategoryBytes(sim::TrafficCategory::kControl)),
                bench::Mb(t.CategoryBytes(sim::TrafficCategory::kQuery)),
                completed);
    std::fflush(stdout);
    report.AddRow()
        .Num("indexed_mb", static_cast<double>(mb))
        .Num("total_mb", bench::Mb(t.bytes))
        .Num("posting_mb",
             bench::Mb(t.CategoryBytes(sim::TrafficCategory::kPosting)))
        .Num("control_mb",
             bench::Mb(t.CategoryBytes(sim::TrafficCategory::kControl)))
        .Num("query_mb",
             bench::Mb(t.CategoryBytes(sim::TrafficCategory::kQuery)))
        .Num("queries_completed", static_cast<double>(completed));
  }
  report.Write();
  std::printf(
      "\nPaper shape: total traffic grows linearly with the indexed volume\n"
      "(32/66/95/127 MB at 200..800 MB indexed) — motivating the Bloom\n"
      "filter strategies of Section 5.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
