// Ablation for Section 4.1: ordered (range) DPP splits vs randomly
// distributing a block's data between peers. Random distribution still
// allows parallel transfers, but block conditions no longer guide the
// search: the [min, max] document-interval filter cannot skip any block,
// and the receiver has to merge the streams. The paper found the ordered
// variant "a few times" better and dropped the random one.
//
// Workload: a large DBLP index plus a small specialized collection from a
// separate publisher whose titles contain a rare planted keyword ("edos").
// The query touches that keyword and the huge author list; with ordered
// conditions the document interval confines the author fetch to the small
// publisher's range.

#include <cstdio>

#include "bench/bench_util.h"
#include "xml/node.h"

namespace kadop {
namespace {

constexpr const char* kQuery = "//article[contains(.//title,'edos')]//author";

/// A small collection whose titles all contain the planted keyword.
std::vector<xml::Document> MakeEdosDocs(size_t count) {
  std::vector<xml::Document> docs;
  Rng rng(77);
  for (size_t i = 0; i < count; ++i) {
    xml::Document doc;
    doc.uri = "edos/doc" + std::to_string(i) + ".xml";
    doc.root = xml::Node::Element("dblp");
    for (int e = 0; e < 10; ++e) {
      xml::Node* entry = doc.root->AddElement("article");
      entry->AddElement("author")->AddText("Edos" +
                                           std::to_string(rng.Uniform(20)));
      entry->AddElement("title")->AddText("the edos package report " +
                                          std::to_string(rng.Next() % 997));
      entry->AddElement("year")->AddText("2006");
    }
    xml::AnnotateSids(doc);
    docs.push_back(std::move(doc));
  }
  return docs;
}

void Run() {
  bench::Banner("SEC 4.1 ablation", "ordered vs random DPP block splits");
  bench::BenchReport report("ablation_dpp_order",
                            "ordered vs random DPP block splits");
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 8 << 20;
  auto dblp = xml::corpus::GenerateDblp(copt);
  auto edos = MakeEdosDocs(20);

  std::printf("query: %s\n\n", kQuery);
  std::printf("%-18s%14s%14s%16s%16s\n", "split policy", "response (s)",
              "blocks", "blocks skipped", "postings (MB)");
  for (bool ordered : {true, false}) {
    core::KadopOptions opt;
    opt.peers = 64;
    opt.dpp.ordered_splits = ordered;
    core::KadopNet net(opt);
    // Four DBLP publishers, then the small Edos publisher last, so the
    // Edos documents occupy a narrow corner of the (peer, doc) space.
    auto batches = bench::SplitAcrossPublishers(dblp, 4, 32);
    net.ParallelPublishAndWait(batches);
    net.PublishAndWait(40, bench::Ptrs(edos));

    query::QueryOptions qopt;
    qopt.strategy = query::QueryStrategy::kDpp;
    auto result = net.QueryAndWait(1, kQuery, qopt);
    if (!result.ok()) {
      std::printf("query failed: %s\n", result.status().ToString().c_str());
      continue;
    }
    const query::QueryMetrics& m = result.value().metrics;
    std::printf("%-18s%14.4f%14llu%16llu%16.2f\n",
                ordered ? "ordered (paper)" : "random",
                m.ResponseTime(),
                static_cast<unsigned long long>(m.blocks_fetched),
                static_cast<unsigned long long>(m.blocks_skipped),
                bench::Mb(m.posting_bytes));
    std::fflush(stdout);
    report.AddRow()
        .Str("split_policy", ordered ? "ordered" : "random")
        .Num("response_s", m.ResponseTime())
        .Num("blocks_fetched", static_cast<double>(m.blocks_fetched))
        .Num("blocks_skipped", static_cast<double>(m.blocks_skipped))
        .Num("posting_mb", bench::Mb(m.posting_bytes));
  }
  report.Write();
  std::printf(
      "\nPaper shape: ordered splits win by several times — conditions\n"
      "let the index skip author/article blocks outside the narrow\n"
      "document interval of the rare keyword.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
