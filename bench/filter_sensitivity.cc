// Reproduces the Section 5.4 filter sensitivity analysis on the query
// a//b: the empirical false-positive rate of the AB and DB filters as the
// basic Bloom-filter rate fp[psi] grows, plus the effect of the psi trace
// function at equal filter accuracy targets.
//
// Paper findings: the AB filter's error stays below ~10% even at
// fp[psi] = 20% (conjunctive probing), while the DB filter needs
// fp[psi] < 5% and degrades past 50% (disjunctive probing); the psi trace
// function beats a single trace per level at equal size.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "bloom/structural_filter.h"
#include "index/structural_join.h"
#include "index/terms.h"

namespace kadop {
namespace {

using bloom::AncestorBloomFilter;
using bloom::DescendantBloomFilter;
using bloom::StructuralFilterParams;
using index::PostingList;

struct Lists {
  PostingList la;  // ancestors (a)
  PostingList lb;  // descendants (b)
  int levels = 0;
};

Lists MakeLists() {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 2 << 20;
  auto docs = xml::corpus::GenerateDblp(copt);
  Lists out;
  uint32_t max_tag = 0;
  for (size_t d = 0; d < docs.size(); ++d) {
    std::vector<index::TermPosting> postings;
    index::ExtractOptions eopt;
    eopt.index_words = false;
    index::ExtractTerms(docs[d], 0, static_cast<uint32_t>(d), eopt,
                        postings);
    for (const auto& tp : postings) {
      if (tp.key == "l:article") out.la.push_back(tp.posting);
      if (tp.key == "l:journal") out.lb.push_back(tp.posting);
      max_tag = std::max(max_tag, tp.posting.sid.end);
    }
  }
  std::sort(out.la.begin(), out.la.end());
  std::sort(out.lb.begin(), out.lb.end());
  out.levels = bloom::LevelsFor(max_tag);
  return out;
}

double Rate(size_t kept, size_t exact, size_t total) {
  if (total == exact) return 0.0;
  return static_cast<double>(kept - exact) /
         static_cast<double>(total - exact);
}

void Run() {
  bench::Banner("SEC 5.4a", "structural filter sensitivity (query a//b)");
  bench::BenchReport report("filter_sensitivity",
                            "structural filter sensitivity (query a//b)");
  Lists data = MakeLists();
  // Ground truth both ways. The b list (journal) appears only under
  // `article`; to measure false positives we probe with a list containing
  // true negatives as well: the full element population under each filter.
  const PostingList b_true = index::DescendantSemiJoin(data.la, data.lb);
  const PostingList a_true = index::AncestorSemiJoin(data.la, data.lb);
  std::printf("a = article (%zu postings), b = journal (%zu postings), "
              "l = %d\n\n",
              data.la.size(), data.lb.size(), data.levels);

  // Probe populations with negatives: shift document ids so that half the
  // probes cannot match.
  PostingList b_probe = data.lb;
  PostingList a_probe = data.la;
  for (size_t i = 0; i < b_probe.size(); i += 2) b_probe[i].doc += 100000;
  for (size_t i = 0; i < a_probe.size(); i += 2) a_probe[i].doc += 100000;
  std::sort(b_probe.begin(), b_probe.end());
  std::sort(a_probe.begin(), a_probe.end());
  const PostingList b_probe_true =
      index::DescendantSemiJoin(data.la, b_probe);
  const PostingList a_probe_true = index::AncestorSemiJoin(a_probe, data.lb);

  std::printf("%-12s%16s%17s%10s%12s%12s\n", "fp[psi]", "AB err (psi)",
              "AB err (1 trace)", "DB err", "ABF bytes", "DBF bytes");
  for (double fp : {0.01, 0.05, 0.10, 0.20, 0.30}) {
    StructuralFilterParams psi_params;
    psi_params.levels = data.levels;
    psi_params.target_fp = fp;
    psi_params.trace_c = 4;
    StructuralFilterParams flat_params = psi_params;
    flat_params.trace_c = 0;
    // The paper's psi replication applies to the AB filter; the DB filter
    // uses plain insertion.
    StructuralFilterParams db_params = psi_params;
    db_params.trace_c = 0;

    auto abf_psi = AncestorBloomFilter::Build(data.la, psi_params);
    auto abf_flat = AncestorBloomFilter::Build(data.la, flat_params);
    auto dbf = DescendantBloomFilter::Build(data.lb, db_params);

    const double ab_psi_err =
        Rate(abf_psi.Filter(b_probe).size(), b_probe_true.size(),
             b_probe.size());
    const double ab_flat_err =
        Rate(abf_flat.Filter(b_probe).size(), b_probe_true.size(),
             b_probe.size());
    const double db_err = Rate(dbf.Filter(a_probe).size(),
                               a_probe_true.size(), a_probe.size());
    std::printf("%-12.2f%15.1f%%%16.1f%%%9.1f%%%12zu%12zu\n", fp,
                100 * ab_psi_err, 100 * ab_flat_err, 100 * db_err,
                abf_psi.SizeBytes(), dbf.SizeBytes());
    std::fflush(stdout);
    report.AddRow()
        .Num("fp_psi", fp)
        .Num("ab_err_psi", ab_psi_err)
        .Num("ab_err_flat", ab_flat_err)
        .Num("db_err", db_err)
        .Num("abf_bytes", static_cast<double>(abf_psi.SizeBytes()))
        .Num("dbf_bytes", static_cast<double>(dbf.SizeBytes()));
  }
  report.Write();
  std::printf(
      "\nPaper shape: AB error stays low as fp[psi] grows (conjunctive\n"
      "containment probes); DB error grows much faster (disjunctive\n"
      "probes); psi traces beat a single trace per level.\n");
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
