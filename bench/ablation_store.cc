// Ablation for Section 3 ("Improving indexing time"): publishing cost under
// the three store/API configurations the paper walks through:
//   1. PAST-style store, per-entry put reconciliation  (the original);
//   2. PAST-style store, batched puts                  (buffering only);
//   3. B+-tree store with the append API               (the re-engineered
//      store — paper: publishing sped up "by two to three orders of
//      magnitude").
// Also shows the read-side win of the clustered store: extracting a small
// posting range reads only the range from the B+-tree but the whole value
// from the naive store.

#include <cstdio>

#include "bench/bench_util.h"
#include "dht/ring.h"

namespace kadop {
namespace {

struct Config {
  const char* label;
  dht::StoreKind store;
  bool per_entry;
  size_t batch;
};

void Run() {
  bench::Banner("SEC 3 ablation", "store & API choices for publishing");
  bench::BenchReport report("ablation_store",
                            "store & API choices for publishing");
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 1 << 20;
  auto docs = xml::corpus::GenerateDblp(copt);

  const Config configs[] = {
      {"naive store, per-entry put (PAST)", dht::StoreKind::kNaive, true, 1},
      {"naive store, batched puts", dht::StoreKind::kNaive, false, 512},
      {"B+-tree store, append API", dht::StoreKind::kBTree, false, 512},
  };

  std::printf("%-38s%14s%16s%16s\n", "configuration", "publish (s)",
              "disk read (MB)", "disk write (MB)");
  double slowest = 0, fastest = 0;
  for (const Config& config : configs) {
    core::KadopOptions opt;
    opt.peers = 32;
    opt.enable_dpp = false;
    opt.dht.store_kind = config.store;
    opt.dht.per_entry_reconciliation = config.per_entry;
    opt.publish.batch_postings = config.batch;
    core::KadopNet net(opt);
    const double elapsed = net.PublishAndWait(0, bench::Ptrs(docs));
    const store::IoStats io = net.dht().AggregateIo();
    std::printf("%-38s%14.2f%16.2f%16.2f\n", config.label, elapsed,
                bench::Mb(io.read_bytes), bench::Mb(io.write_bytes));
    if (config.per_entry) slowest = elapsed;
    fastest = elapsed;
    std::fflush(stdout);
    report.AddRow()
        .Str("config", config.label)
        .Num("publish_s", elapsed)
        .Num("disk_read_mb", bench::Mb(io.read_bytes))
        .Num("disk_write_mb", bench::Mb(io.write_bytes));
  }
  std::printf("\nspeedup PAST -> B+-tree/append: %.0fx (paper: 2-3 orders "
              "of magnitude)\n", slowest / fastest);

  // Read-side: clustered range reads vs whole-value reads.
  std::printf("\nRange read of ~100 postings out of the author list:\n");
  for (dht::StoreKind kind :
       {dht::StoreKind::kNaive, dht::StoreKind::kBTree}) {
    core::KadopOptions opt;
    opt.peers = 32;
    opt.enable_dpp = false;
    opt.dht.store_kind = kind;
    core::KadopNet net(opt);
    net.PublishAndWait(0, bench::Ptrs(docs));
    // Find the author-list owner and charge a range read.
    const auto owner = net.dht().OwnerOf(dht::HashKey("l:author"));
    store::PeerStore* store = net.dht().peer(owner)->store();
    const uint64_t before = store->io().read_bytes;
    index::PostingList range = store->GetPostingRange(
        "l:author", index::Posting{0, 5, {0, 0, 0}},
        index::Posting{0, 9, {UINT32_MAX, UINT32_MAX, UINT16_MAX}}, 0);
    const uint64_t read = store->io().read_bytes - before;
    std::printf("  %-12s read %8llu bytes for %zu postings\n",
                kind == dht::StoreKind::kNaive ? "naive:" : "B+-tree:",
                static_cast<unsigned long long>(read), range.size());
    report.AddRow()
        .Str("config", kind == dht::StoreKind::kNaive
                           ? "range read, naive store"
                           : "range read, B+-tree store")
        .Num("range_read_bytes", static_cast<double>(read))
        .Num("range_postings", static_cast<double>(range.size()));
  }
  report.Write();
}

}  // namespace
}  // namespace kadop

int main() {
  kadop::Run();
  return 0;
}
