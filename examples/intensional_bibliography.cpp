// Intensional data with the Fundex (Section 6): bibliography entries keep
// their abstracts in separate files via XML entity includes (exactly the
// paper's Figure 8 pattern). The example publishes the collection under
// the four indexing schemes and shows their completeness/precision and
// query-time trade-offs.

#include <cstdio>

#include "core/kadop.h"
#include "xml/corpus.h"

int main() {
  using namespace kadop;

  // An INEX-HCO-like collection: each publication = a description file
  // plus an abstract file referenced with <!ENTITY ... SYSTEM ...>.
  xml::corpus::InexOptions copt;
  copt.publications = 800;
  copt.planted_matches = 8;
  auto docs = xml::corpus::GenerateInex(copt);
  std::printf("collection: %zu publications (x2 files each)\n",
              copt.publications);
  std::printf("query: articles with 'system' in the title AND 'interface' "
              "in the (intensional) abstract\n\n");

  const char* expr =
      "//article[contains(.//title,'system') and "
      "contains(.//abstract,'interface')]";

  std::printf("%-24s%12s%12s%14s%14s\n", "indexing scheme", "found",
              "rev gets", "query (s)", "postings");
  for (fundex::IntensionalMode mode :
       {fundex::IntensionalMode::kNaive,
        fundex::IntensionalMode::kFundexSimple,
        fundex::IntensionalMode::kFundexRepresentative,
        fundex::IntensionalMode::kInline}) {
    core::KadopOptions options;
    options.peers = 16;
    core::KadopNet net(options);
    net.RegisterDocuments(docs);  // uri resolution for includes
    std::vector<const xml::Document*> mains;
    for (size_t i = 0; i < copt.publications; ++i) mains.push_back(&docs[i]);
    net.FundexPublishAndWait(/*publisher=*/1, mains, mode);

    auto result = net.FundexQueryAndWait(/*at=*/3, expr, mode);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("%-24s%12zu%12llu%14.4f%14llu\n",
                std::string(fundex::IntensionalModeName(mode)).c_str(),
                result.value().matched_docs.size(),
                static_cast<unsigned long long>(result.value().rev_lookups),
                result.value().response_time,
                static_cast<unsigned long long>(
                    net.dht().AggregateStats().postings_stored));
  }
  std::printf(
      "\nnaive misses everything (abstracts invisible); fundex-simple and\n"
      "in-lining are complete and precise; the representative index is\n"
      "complete but approximate, and cheapest to build.\n");
  return 0;
}
