// Quickstart: build a small KadoP network, publish XML documents, and run
// distributed tree-pattern queries over the DHT index.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/kadop.h"
#include "xml/parser.h"

int main() {
  using namespace kadop;

  // 1. A network of 8 simulated peers (DHT overlay + local stores + all
  //    KadoP services). Everything runs deterministically on a virtual
  //    clock.
  core::KadopOptions options;
  options.peers = 8;
  core::KadopNet net(options);

  // 2. Parse a few documents. Attributes are normalized into child
  //    elements; every element gets a (start, end, level) structural id.
  const char* texts[] = {
      "<article><author>Jeff Ullman</author>"
      "<title>Principles of Database Systems</title>"
      "<year>1980</year></article>",
      "<article><author>Serge Abiteboul</author><author>Victor Vianu</author>"
      "<title>Foundations of Databases</title><year>1995</year></article>",
      "<inproceedings><author>Nicolas Bruno</author>"
      "<title>Holistic twig joins</title><year>2002</year></inproceedings>",
  };
  std::vector<xml::Document> docs;
  for (const char* text : texts) {
    auto parsed = xml::ParseDocument(text, "doc" + std::to_string(docs.size()));
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    docs.push_back(parsed.take());
  }

  // 3. Publish from peer 2: the documents stay local; their Term relation
  //    (element labels + words, with structural ids) is indexed in the DHT.
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  const double publish_time = net.PublishAndWait(/*publisher=*/2, ptrs);
  std::printf("published %zu documents in %.4f virtual seconds\n",
              docs.size(), publish_time);

  // 4. Run index queries from another peer. The engine fetches the posting
  //    lists of the query terms and runs a holistic twig join.
  const char* queries[] = {
      "//article//author",
      "//article[. contains 'Ullman']",
      "//article[//year]//title",
      "//inproceedings//author",
  };
  for (const char* expr : queries) {
    query::QueryOptions qopt;
    qopt.strategy = query::QueryStrategy::kBaseline;
    auto result = net.QueryAndWait(/*at=*/5, expr, qopt);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("\n%-40s -> %zu answer tuple(s), %.4fs\n", expr,
                result.value().answers.size(),
                result.value().metrics.ResponseTime());
    for (const auto& answer : result.value().answers) {
      std::printf("  doc %s:", answer.doc.ToString().c_str());
      for (const auto& sid : answer.elements) {
        std::printf(" %s", sid.ToString().c_str());
      }
      std::printf("\n");
    }
  }

  // 5. Full two-phase query: the index narrows down the documents, then
  //    the peers holding them evaluate the pattern locally.
  query::QueryOptions qopt;
  auto full = net.QueryDocumentsAndWait(0, "//article[. contains 'Ullman']",
                                        qopt);
  if (full.ok()) {
    std::printf("\ntwo-phase query: %zu final answers in %.4fs total\n",
                full.value().final_answers.size(), full.value().total_time);
  }
  return 0;
}
