// An ad-hoc content-sharing community (Section 1's first motivating use
// case): peers share bibliography fragments, query them with different
// evaluation strategies, and survive a peer failure thanks to DHT
// replication.

#include <cstdio>

#include "core/kadop.h"
#include "dht/ring.h"
#include "xml/corpus.h"

int main() {
  using namespace kadop;

  core::KadopOptions options;
  options.peers = 24;
  options.dht.replication = 3;  // each index entry on 3 peers
  options.enable_dpp = false;   // replication applies to flat lists
  core::KadopNet net(options);

  // Three community members publish their own bibliographies.
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 1 << 20;
  auto docs = xml::corpus::GenerateDblp(copt);
  std::vector<std::pair<sim::NodeIndex, std::vector<const xml::Document*>>>
      batches = {{0, {}}, {8, {}}, {16, {}}};
  for (size_t i = 0; i < docs.size(); ++i) {
    batches[i % 3].second.push_back(&docs[i]);
  }
  net.ParallelPublishAndWait(batches);
  std::printf("community index built: %llu postings over %zu peers\n\n",
              static_cast<unsigned long long>(
                  net.dht().AggregateStats().postings_stored),
              net.PeerCount());

  // The same selective query under different strategies: compare the data
  // volume each one moves.
  const char* expr = "//article//author[. contains 'Ullman']";
  std::printf("query: %s\n", expr);
  std::printf("%-20s%14s%14s%12s\n", "strategy", "volume (KB)",
              "normalized", "answers");
  for (query::QueryStrategy strategy :
       {query::QueryStrategy::kBaseline, query::QueryStrategy::kAbReducer,
        query::QueryStrategy::kDbReducer,
        query::QueryStrategy::kBloomReducer}) {
    query::QueryOptions qopt;
    qopt.strategy = strategy;
    auto result = net.QueryAndWait(5, expr, qopt);
    if (!result.ok()) continue;
    const auto& m = result.value().metrics;
    const double kb =
        static_cast<double>(m.posting_bytes + m.ab_filter_bytes +
                            m.db_filter_bytes) /
        1024.0;
    std::printf("%-20s%14.1f%14.3f%12zu\n",
                std::string(query::QueryStrategyName(strategy)).c_str(), kb,
                m.NormalizedDataVolume(), result.value().answers.size());
  }

  // Failure injection: kill the peer in charge of the author list; after
  // the overlay stabilizes, the successor answers from its replica.
  const auto owner = net.dht().OwnerOf(dht::HashKey("l:author"));
  std::printf("\nfailing peer %u (owner of l:author)...\n", owner);
  net.dht().FailPeer(owner);
  net.dht().Stabilize();
  query::QueryOptions qopt;
  auto after = net.QueryAndWait(5, expr, qopt);
  if (after.ok()) {
    std::printf("after failover: %zu answers, complete=%s\n",
                after.value().answers.size(),
                after.value().metrics.complete ? "yes" : "no");
  }
  return 0;
}
