// The paper's motivating application (Section 1): the Edos project — a
// community of Linux-distribution developers sharing the metadata of
// ~10 000 software packages as XML, indexed in a DHT so that any developer
// can ask structured questions ("which packages depend on libxml?").
//
// This example generates package-metadata documents, publishes them from
// several developer peers in parallel, and runs dependency queries with
// the DPP strategy, printing index statistics along the way.

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/kadop.h"
#include "xml/node.h"

namespace {

/// Generates package metadata documents, ~40 packages per document (one
/// document per "category" file of the distribution).
std::vector<kadop::xml::Document> GeneratePackages(size_t packages,
                                                   uint64_t seed) {
  using kadop::xml::Document;
  using kadop::xml::Node;
  kadop::Rng rng(seed);
  static const char* kLibs[] = {"libxml",  "libc",    "libssl",
                                "zlib",    "libpng",  "gtk",
                                "qt",      "python",  "perl"};
  std::vector<Document> docs;
  size_t made = 0;
  size_t file = 0;
  while (made < packages) {
    Document doc;
    doc.uri = "edos/cat" + std::to_string(file++) + ".xml";
    doc.root = Node::Element("packages");
    for (int p = 0; p < 40 && made < packages; ++p, ++made) {
      Node* pkg = doc.root->AddElement("package");
      pkg->AddElement("name")->AddText("pkg" + std::to_string(made));
      pkg->AddElement("version")->AddText(
          std::to_string(1 + rng.Uniform(9)) + "." +
          std::to_string(rng.Uniform(20)));
      pkg->AddElement("summary")->AddText(
          "a package providing feature " + std::to_string(rng.Uniform(50)));
      Node* deps = pkg->AddElement("dependencies");
      const size_t n_deps = 1 + rng.Uniform(4);
      for (size_t d = 0; d < n_deps; ++d) {
        deps->AddElement("requires")->AddText(kLibs[rng.Uniform(9)]);
      }
      if (rng.Bernoulli(0.2)) {
        pkg->AddElement("conflicts")->AddText(kLibs[rng.Uniform(9)]);
      }
    }
    kadop::xml::AnnotateSids(doc);
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace

int main() {
  using namespace kadop;

  // A community of 40 developer peers.
  core::KadopOptions options;
  options.peers = 40;
  options.dpp.max_block_postings = 2048;
  core::KadopNet net(options);

  // One distribution release: 10 000 packages, published by 8 developers
  // in parallel (each contributes a slice of the metadata).
  auto docs = GeneratePackages(10000, /*seed=*/2006);
  std::vector<std::pair<sim::NodeIndex, std::vector<const xml::Document*>>>
      batches(8);
  for (size_t i = 0; i < docs.size(); ++i) {
    batches[i % 8].first = static_cast<sim::NodeIndex>(5 * (i % 8));
    batches[i % 8].second.push_back(&docs[i]);
  }
  const double publish_time = net.ParallelPublishAndWait(batches);
  std::printf("Edos release indexed: %zu metadata files, %llu postings, "
              "%.3f virtual s\n",
              docs.size(),
              static_cast<unsigned long long>(
                  net.dht().AggregateStats().postings_stored),
              publish_time);

  // How partitioned did the popular lists get?
  size_t partitioned = 0;
  for (size_t i = 0; i < net.PeerCount(); ++i) {
    auto* dpp = net.peer(static_cast<sim::NodeIndex>(i))->dpp();
    if (dpp) partitioned += dpp->PartitionedTermCount();
  }
  std::printf("terms with DPP-partitioned posting lists: %zu\n\n",
              partitioned);

  // Developer queries.
  const char* queries[] = {
      "//package[contains(.//requires,'libxml')]//name",
      "//package[contains(.//requires,'libssl')][//conflicts]//name",
      "//package[contains(.//summary,'feature')]//version",
  };
  for (const char* expr : queries) {
    query::QueryOptions qopt;
    qopt.strategy = query::QueryStrategy::kDpp;
    auto result = net.QueryAndWait(/*at=*/11, expr, qopt);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    const auto& m = result.value().metrics;
    std::printf("%-58s\n  -> %6zu matching docs, %.4fs response, "
                "%.4fs to first answer, %llu/%llu blocks skipped\n",
                expr, result.value().matched_docs.size(), m.ResponseTime(),
                m.TimeToFirstAnswer(),
                static_cast<unsigned long long>(m.blocks_skipped),
                static_cast<unsigned long long>(m.blocks_skipped +
                                                m.blocks_fetched));
  }
  return 0;
}
