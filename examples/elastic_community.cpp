// Operating a long-lived community: the index must survive growth
// (peers joining with key-range handoff), shrinkage (failures with
// replication), and content turnover (documents withdrawn and replaced),
// while the auto optimizer keeps picking sensible plans.

#include <cstdio>

#include "core/kadop.h"
#include "xml/corpus.h"

namespace {

size_t RunQuery(kadop::core::KadopNet& net, const char* expr) {
  kadop::query::QueryOptions qopt;
  qopt.strategy = kadop::query::QueryStrategy::kAuto;
  // This community runs the flat (replicated) index: DPP block replication
  // is future work in the paper, so survivable deployments disable it.
  qopt.dpp_available = false;
  auto result = net.QueryAndWait(0, expr, qopt);
  if (!result.ok()) {
    std::fprintf(stderr, "  query failed: %s\n",
                 result.status().ToString().c_str());
    return 0;
  }
  std::printf("  %-46s -> %4zu answers (%s, %.4fs, complete=%s)\n", expr,
              result.value().answers.size(),
              std::string(kadop::query::QueryStrategyName(
                              result.value().metrics.effective_strategy))
                  .c_str(),
              result.value().metrics.ResponseTime(),
              result.value().metrics.complete ? "yes" : "no");
  return result.value().answers.size();
}

}  // namespace

int main() {
  using namespace kadop;

  core::KadopOptions options;
  options.peers = 10;
  // Replication protects index entries against peer failure; it applies to
  // the flat index (per-block DPP replication is the paper's future work),
  // so this deployment trades DPP parallelism for survivability.
  options.enable_dpp = false;
  options.dht.replication = 2;
  core::KadopNet net(options);

  xml::corpus::DblpOptions copt;
  copt.target_bytes = 1 << 20;
  auto docs = xml::corpus::GenerateDblp(copt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(1, ptrs);
  std::printf("day 0: %zu documents published on %zu peers\n", docs.size(),
              net.PeerCount());
  const char* q1 = "//article//author[. contains 'Ullman']";
  const char* q2 = "//article//title";
  const size_t baseline_answers = RunQuery(net, q1);
  RunQuery(net, q2);

  std::printf("\nweek 1: the community grows — 5 peers join\n");
  for (int i = 0; i < 5; ++i) {
    const sim::NodeIndex node = net.JoinPeerAndWait();
    std::printf("  peer %u joined, now holding %zu postings\n", node,
                net.peer(node)->dht_peer()->store()->TotalPostings());
  }
  if (RunQuery(net, q1) == baseline_answers) {
    std::printf("  (answers unchanged after handoff)\n");
  }

  std::printf("\nweek 2: content turnover — withdraw 5 documents\n");
  for (index::DocSeq seq = 0; seq < 5; ++seq) {
    if (!net.UnpublishAndWait(1, seq)) {
      std::printf("  (document %u was not published)\n", seq);
    }
  }
  RunQuery(net, q1);
  std::printf("  republish one of them\n");
  net.PublishAndWait(1, {&docs[0]});
  RunQuery(net, q1);

  std::printf("\nweek 3: a peer disappears\n");
  net.FailPeerAndStabilize(4);
  RunQuery(net, q1);
  RunQuery(net, q2);

  std::printf("\nfinal traffic: %.2f MB over %llu messages\n",
              net.network().traffic().bytes / (1024.0 * 1024.0),
              static_cast<unsigned long long>(
                  net.network().traffic().messages));
  return 0;
}
