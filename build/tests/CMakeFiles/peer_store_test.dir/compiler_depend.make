# Empty compiler generated dependencies file for peer_store_test.
# This may be replaced when dependencies are built.
