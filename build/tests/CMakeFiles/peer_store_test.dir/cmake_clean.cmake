file(REMOVE_RECURSE
  "CMakeFiles/peer_store_test.dir/peer_store_test.cc.o"
  "CMakeFiles/peer_store_test.dir/peer_store_test.cc.o.d"
  "peer_store_test"
  "peer_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
