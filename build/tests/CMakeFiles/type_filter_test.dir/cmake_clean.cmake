file(REMOVE_RECURSE
  "CMakeFiles/type_filter_test.dir/type_filter_test.cc.o"
  "CMakeFiles/type_filter_test.dir/type_filter_test.cc.o.d"
  "type_filter_test"
  "type_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
