# Empty compiler generated dependencies file for type_filter_test.
# This may be replaced when dependencies are built.
