file(REMOVE_RECURSE
  "CMakeFiles/twig_join_test.dir/twig_join_test.cc.o"
  "CMakeFiles/twig_join_test.dir/twig_join_test.cc.o.d"
  "twig_join_test"
  "twig_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
