file(REMOVE_RECURSE
  "CMakeFiles/bloom_param_test.dir/bloom_param_test.cc.o"
  "CMakeFiles/bloom_param_test.dir/bloom_param_test.cc.o.d"
  "bloom_param_test"
  "bloom_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloom_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
