# Empty dependencies file for bloom_param_test.
# This may be replaced when dependencies are built.
