# Empty dependencies file for fundex_test.
# This may be replaced when dependencies are built.
