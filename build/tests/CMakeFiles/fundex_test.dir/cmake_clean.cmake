file(REMOVE_RECURSE
  "CMakeFiles/fundex_test.dir/fundex_test.cc.o"
  "CMakeFiles/fundex_test.dir/fundex_test.cc.o.d"
  "fundex_test"
  "fundex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fundex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
