# Empty dependencies file for dpp_test.
# This may be replaced when dependencies are built.
