file(REMOVE_RECURSE
  "CMakeFiles/dpp_test.dir/dpp_test.cc.o"
  "CMakeFiles/dpp_test.dir/dpp_test.cc.o.d"
  "dpp_test"
  "dpp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
