# Empty compiler generated dependencies file for terms_test.
# This may be replaced when dependencies are built.
