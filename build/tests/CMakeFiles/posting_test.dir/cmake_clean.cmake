file(REMOVE_RECURSE
  "CMakeFiles/posting_test.dir/posting_test.cc.o"
  "CMakeFiles/posting_test.dir/posting_test.cc.o.d"
  "posting_test"
  "posting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
