file(REMOVE_RECURSE
  "CMakeFiles/fundex_dpp_test.dir/fundex_dpp_test.cc.o"
  "CMakeFiles/fundex_dpp_test.dir/fundex_dpp_test.cc.o.d"
  "fundex_dpp_test"
  "fundex_dpp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fundex_dpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
