# Empty compiler generated dependencies file for fundex_dpp_test.
# This may be replaced when dependencies are built.
