file(REMOVE_RECURSE
  "CMakeFiles/twig_stack_test.dir/twig_stack_test.cc.o"
  "CMakeFiles/twig_stack_test.dir/twig_stack_test.cc.o.d"
  "twig_stack_test"
  "twig_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
