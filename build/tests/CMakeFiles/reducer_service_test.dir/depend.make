# Empty dependencies file for reducer_service_test.
# This may be replaced when dependencies are built.
