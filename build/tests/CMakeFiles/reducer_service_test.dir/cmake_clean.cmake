file(REMOVE_RECURSE
  "CMakeFiles/reducer_service_test.dir/reducer_service_test.cc.o"
  "CMakeFiles/reducer_service_test.dir/reducer_service_test.cc.o.d"
  "reducer_service_test"
  "reducer_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reducer_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
