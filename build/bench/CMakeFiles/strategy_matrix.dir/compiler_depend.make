# Empty compiler generated dependencies file for strategy_matrix.
# This may be replaced when dependencies are built.
