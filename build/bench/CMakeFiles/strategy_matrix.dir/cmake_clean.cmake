file(REMOVE_RECURSE
  "CMakeFiles/strategy_matrix.dir/strategy_matrix.cc.o"
  "CMakeFiles/strategy_matrix.dir/strategy_matrix.cc.o.d"
  "strategy_matrix"
  "strategy_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
