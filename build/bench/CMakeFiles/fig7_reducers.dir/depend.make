# Empty dependencies file for fig7_reducers.
# This may be replaced when dependencies are built.
