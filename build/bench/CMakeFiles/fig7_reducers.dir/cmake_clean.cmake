file(REMOVE_RECURSE
  "CMakeFiles/fig7_reducers.dir/fig7_reducers.cc.o"
  "CMakeFiles/fig7_reducers.dir/fig7_reducers.cc.o.d"
  "fig7_reducers"
  "fig7_reducers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_reducers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
