# Empty dependencies file for ablation_dpp_order.
# This may be replaced when dependencies are built.
