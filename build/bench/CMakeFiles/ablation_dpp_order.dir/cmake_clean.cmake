file(REMOVE_RECURSE
  "CMakeFiles/ablation_dpp_order.dir/ablation_dpp_order.cc.o"
  "CMakeFiles/ablation_dpp_order.dir/ablation_dpp_order.cc.o.d"
  "ablation_dpp_order"
  "ablation_dpp_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dpp_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
