
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_dpp_order.cc" "bench/CMakeFiles/ablation_dpp_order.dir/ablation_dpp_order.cc.o" "gcc" "bench/CMakeFiles/ablation_dpp_order.dir/ablation_dpp_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kadop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fundex/CMakeFiles/kadop_fundex.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/kadop_query.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/kadop_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/kadop_index.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/kadop_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/kadop_store.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/kadop_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kadop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kadop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
