# Empty compiler generated dependencies file for table1_dyadic.
# This may be replaced when dependencies are built.
