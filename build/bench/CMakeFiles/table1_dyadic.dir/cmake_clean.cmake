file(REMOVE_RECURSE
  "CMakeFiles/table1_dyadic.dir/table1_dyadic.cc.o"
  "CMakeFiles/table1_dyadic.dir/table1_dyadic.cc.o.d"
  "table1_dyadic"
  "table1_dyadic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dyadic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
