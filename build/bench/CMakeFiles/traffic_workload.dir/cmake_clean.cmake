file(REMOVE_RECURSE
  "CMakeFiles/traffic_workload.dir/traffic_workload.cc.o"
  "CMakeFiles/traffic_workload.dir/traffic_workload.cc.o.d"
  "traffic_workload"
  "traffic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
