# Empty compiler generated dependencies file for traffic_workload.
# This may be replaced when dependencies are built.
