# Empty compiler generated dependencies file for fig2_indexing.
# This may be replaced when dependencies are built.
