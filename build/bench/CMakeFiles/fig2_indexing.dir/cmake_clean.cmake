file(REMOVE_RECURSE
  "CMakeFiles/fig2_indexing.dir/fig2_indexing.cc.o"
  "CMakeFiles/fig2_indexing.dir/fig2_indexing.cc.o.d"
  "fig2_indexing"
  "fig2_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
