file(REMOVE_RECURSE
  "CMakeFiles/ablation_store.dir/ablation_store.cc.o"
  "CMakeFiles/ablation_store.dir/ablation_store.cc.o.d"
  "ablation_store"
  "ablation_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
