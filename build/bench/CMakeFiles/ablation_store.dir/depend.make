# Empty dependencies file for ablation_store.
# This may be replaced when dependencies are built.
