file(REMOVE_RECURSE
  "CMakeFiles/fig9_fundex.dir/fig9_fundex.cc.o"
  "CMakeFiles/fig9_fundex.dir/fig9_fundex.cc.o.d"
  "fig9_fundex"
  "fig9_fundex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fundex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
