# Empty compiler generated dependencies file for fig9_fundex.
# This may be replaced when dependencies are built.
