file(REMOVE_RECURSE
  "CMakeFiles/fig3_query_dpp.dir/fig3_query_dpp.cc.o"
  "CMakeFiles/fig3_query_dpp.dir/fig3_query_dpp.cc.o.d"
  "fig3_query_dpp"
  "fig3_query_dpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_query_dpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
