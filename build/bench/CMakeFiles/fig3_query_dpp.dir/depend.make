# Empty dependencies file for fig3_query_dpp.
# This may be replaced when dependencies are built.
