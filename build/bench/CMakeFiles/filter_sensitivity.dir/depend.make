# Empty dependencies file for filter_sensitivity.
# This may be replaced when dependencies are built.
