file(REMOVE_RECURSE
  "CMakeFiles/filter_sensitivity.dir/filter_sensitivity.cc.o"
  "CMakeFiles/filter_sensitivity.dir/filter_sensitivity.cc.o.d"
  "filter_sensitivity"
  "filter_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
