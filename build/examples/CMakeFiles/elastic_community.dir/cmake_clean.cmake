file(REMOVE_RECURSE
  "CMakeFiles/elastic_community.dir/elastic_community.cpp.o"
  "CMakeFiles/elastic_community.dir/elastic_community.cpp.o.d"
  "elastic_community"
  "elastic_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
