# Empty dependencies file for elastic_community.
# This may be replaced when dependencies are built.
