# Empty compiler generated dependencies file for edos_distribution.
# This may be replaced when dependencies are built.
