file(REMOVE_RECURSE
  "CMakeFiles/edos_distribution.dir/edos_distribution.cpp.o"
  "CMakeFiles/edos_distribution.dir/edos_distribution.cpp.o.d"
  "edos_distribution"
  "edos_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edos_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
