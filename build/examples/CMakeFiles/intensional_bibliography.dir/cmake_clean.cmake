file(REMOVE_RECURSE
  "CMakeFiles/intensional_bibliography.dir/intensional_bibliography.cpp.o"
  "CMakeFiles/intensional_bibliography.dir/intensional_bibliography.cpp.o.d"
  "intensional_bibliography"
  "intensional_bibliography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intensional_bibliography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
