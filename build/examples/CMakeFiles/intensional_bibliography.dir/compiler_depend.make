# Empty compiler generated dependencies file for intensional_bibliography.
# This may be replaced when dependencies are built.
