# Empty compiler generated dependencies file for kadop_shell.
# This may be replaced when dependencies are built.
