file(REMOVE_RECURSE
  "CMakeFiles/kadop_shell.dir/kadop_shell.cc.o"
  "CMakeFiles/kadop_shell.dir/kadop_shell.cc.o.d"
  "kadop_shell"
  "kadop_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kadop_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
