file(REMOVE_RECURSE
  "CMakeFiles/kadop_core.dir/kadop.cc.o"
  "CMakeFiles/kadop_core.dir/kadop.cc.o.d"
  "libkadop_core.a"
  "libkadop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kadop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
