file(REMOVE_RECURSE
  "libkadop_core.a"
)
