# Empty compiler generated dependencies file for kadop_core.
# This may be replaced when dependencies are built.
