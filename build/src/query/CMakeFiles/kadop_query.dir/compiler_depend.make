# Empty compiler generated dependencies file for kadop_query.
# This may be replaced when dependencies are built.
