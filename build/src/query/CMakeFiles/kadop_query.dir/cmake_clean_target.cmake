file(REMOVE_RECURSE
  "libkadop_query.a"
)
