file(REMOVE_RECURSE
  "CMakeFiles/kadop_query.dir/executor.cc.o"
  "CMakeFiles/kadop_query.dir/executor.cc.o.d"
  "CMakeFiles/kadop_query.dir/local_eval.cc.o"
  "CMakeFiles/kadop_query.dir/local_eval.cc.o.d"
  "CMakeFiles/kadop_query.dir/reducer.cc.o"
  "CMakeFiles/kadop_query.dir/reducer.cc.o.d"
  "CMakeFiles/kadop_query.dir/tree_pattern.cc.o"
  "CMakeFiles/kadop_query.dir/tree_pattern.cc.o.d"
  "CMakeFiles/kadop_query.dir/twig_join.cc.o"
  "CMakeFiles/kadop_query.dir/twig_join.cc.o.d"
  "CMakeFiles/kadop_query.dir/twig_stack.cc.o"
  "CMakeFiles/kadop_query.dir/twig_stack.cc.o.d"
  "libkadop_query.a"
  "libkadop_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kadop_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
