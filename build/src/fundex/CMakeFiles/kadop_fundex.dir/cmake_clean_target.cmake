file(REMOVE_RECURSE
  "libkadop_fundex.a"
)
