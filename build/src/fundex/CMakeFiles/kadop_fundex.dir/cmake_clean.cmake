file(REMOVE_RECURSE
  "CMakeFiles/kadop_fundex.dir/fundex.cc.o"
  "CMakeFiles/kadop_fundex.dir/fundex.cc.o.d"
  "libkadop_fundex.a"
  "libkadop_fundex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kadop_fundex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
