# Empty dependencies file for kadop_fundex.
# This may be replaced when dependencies are built.
