file(REMOVE_RECURSE
  "libkadop_xml.a"
)
