# Empty dependencies file for kadop_xml.
# This may be replaced when dependencies are built.
