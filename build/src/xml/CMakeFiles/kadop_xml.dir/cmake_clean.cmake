file(REMOVE_RECURSE
  "CMakeFiles/kadop_xml.dir/corpus.cc.o"
  "CMakeFiles/kadop_xml.dir/corpus.cc.o.d"
  "CMakeFiles/kadop_xml.dir/node.cc.o"
  "CMakeFiles/kadop_xml.dir/node.cc.o.d"
  "CMakeFiles/kadop_xml.dir/parser.cc.o"
  "CMakeFiles/kadop_xml.dir/parser.cc.o.d"
  "CMakeFiles/kadop_xml.dir/schema.cc.o"
  "CMakeFiles/kadop_xml.dir/schema.cc.o.d"
  "libkadop_xml.a"
  "libkadop_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kadop_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
