file(REMOVE_RECURSE
  "libkadop_store.a"
)
