file(REMOVE_RECURSE
  "CMakeFiles/kadop_store.dir/peer_store.cc.o"
  "CMakeFiles/kadop_store.dir/peer_store.cc.o.d"
  "libkadop_store.a"
  "libkadop_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kadop_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
