# Empty dependencies file for kadop_store.
# This may be replaced when dependencies are built.
