
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/dpp.cc" "src/index/CMakeFiles/kadop_index.dir/dpp.cc.o" "gcc" "src/index/CMakeFiles/kadop_index.dir/dpp.cc.o.d"
  "/root/repo/src/index/publisher.cc" "src/index/CMakeFiles/kadop_index.dir/publisher.cc.o" "gcc" "src/index/CMakeFiles/kadop_index.dir/publisher.cc.o.d"
  "/root/repo/src/index/structural_join.cc" "src/index/CMakeFiles/kadop_index.dir/structural_join.cc.o" "gcc" "src/index/CMakeFiles/kadop_index.dir/structural_join.cc.o.d"
  "/root/repo/src/index/terms.cc" "src/index/CMakeFiles/kadop_index.dir/terms.cc.o" "gcc" "src/index/CMakeFiles/kadop_index.dir/terms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kadop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/kadop_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/kadop_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kadop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/kadop_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
