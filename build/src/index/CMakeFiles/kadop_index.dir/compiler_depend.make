# Empty compiler generated dependencies file for kadop_index.
# This may be replaced when dependencies are built.
