file(REMOVE_RECURSE
  "CMakeFiles/kadop_index.dir/dpp.cc.o"
  "CMakeFiles/kadop_index.dir/dpp.cc.o.d"
  "CMakeFiles/kadop_index.dir/publisher.cc.o"
  "CMakeFiles/kadop_index.dir/publisher.cc.o.d"
  "CMakeFiles/kadop_index.dir/structural_join.cc.o"
  "CMakeFiles/kadop_index.dir/structural_join.cc.o.d"
  "CMakeFiles/kadop_index.dir/terms.cc.o"
  "CMakeFiles/kadop_index.dir/terms.cc.o.d"
  "libkadop_index.a"
  "libkadop_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kadop_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
