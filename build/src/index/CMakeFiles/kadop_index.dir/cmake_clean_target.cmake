file(REMOVE_RECURSE
  "libkadop_index.a"
)
