file(REMOVE_RECURSE
  "libkadop_sim.a"
)
