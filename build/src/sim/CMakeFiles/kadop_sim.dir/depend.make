# Empty dependencies file for kadop_sim.
# This may be replaced when dependencies are built.
