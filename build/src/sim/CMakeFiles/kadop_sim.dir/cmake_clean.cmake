file(REMOVE_RECURSE
  "CMakeFiles/kadop_sim.dir/network.cc.o"
  "CMakeFiles/kadop_sim.dir/network.cc.o.d"
  "CMakeFiles/kadop_sim.dir/scheduler.cc.o"
  "CMakeFiles/kadop_sim.dir/scheduler.cc.o.d"
  "libkadop_sim.a"
  "libkadop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kadop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
