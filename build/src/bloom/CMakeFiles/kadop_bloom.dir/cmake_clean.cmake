file(REMOVE_RECURSE
  "CMakeFiles/kadop_bloom.dir/bloom_filter.cc.o"
  "CMakeFiles/kadop_bloom.dir/bloom_filter.cc.o.d"
  "CMakeFiles/kadop_bloom.dir/dyadic.cc.o"
  "CMakeFiles/kadop_bloom.dir/dyadic.cc.o.d"
  "CMakeFiles/kadop_bloom.dir/structural_filter.cc.o"
  "CMakeFiles/kadop_bloom.dir/structural_filter.cc.o.d"
  "libkadop_bloom.a"
  "libkadop_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kadop_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
