file(REMOVE_RECURSE
  "libkadop_bloom.a"
)
