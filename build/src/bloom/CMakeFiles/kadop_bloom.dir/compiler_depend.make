# Empty compiler generated dependencies file for kadop_bloom.
# This may be replaced when dependencies are built.
