
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dht/dht.cc" "src/dht/CMakeFiles/kadop_dht.dir/dht.cc.o" "gcc" "src/dht/CMakeFiles/kadop_dht.dir/dht.cc.o.d"
  "/root/repo/src/dht/peer.cc" "src/dht/CMakeFiles/kadop_dht.dir/peer.cc.o" "gcc" "src/dht/CMakeFiles/kadop_dht.dir/peer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kadop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kadop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/kadop_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
