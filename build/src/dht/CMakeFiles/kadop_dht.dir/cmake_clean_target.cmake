file(REMOVE_RECURSE
  "libkadop_dht.a"
)
