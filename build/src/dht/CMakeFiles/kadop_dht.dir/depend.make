# Empty dependencies file for kadop_dht.
# This may be replaced when dependencies are built.
