file(REMOVE_RECURSE
  "CMakeFiles/kadop_dht.dir/dht.cc.o"
  "CMakeFiles/kadop_dht.dir/dht.cc.o.d"
  "CMakeFiles/kadop_dht.dir/peer.cc.o"
  "CMakeFiles/kadop_dht.dir/peer.cc.o.d"
  "libkadop_dht.a"
  "libkadop_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kadop_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
