# Empty dependencies file for kadop_common.
# This may be replaced when dependencies are built.
