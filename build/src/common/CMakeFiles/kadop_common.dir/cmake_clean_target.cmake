file(REMOVE_RECURSE
  "libkadop_common.a"
)
