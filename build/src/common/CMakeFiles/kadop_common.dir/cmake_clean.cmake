file(REMOVE_RECURSE
  "CMakeFiles/kadop_common.dir/hash.cc.o"
  "CMakeFiles/kadop_common.dir/hash.cc.o.d"
  "CMakeFiles/kadop_common.dir/logging.cc.o"
  "CMakeFiles/kadop_common.dir/logging.cc.o.d"
  "CMakeFiles/kadop_common.dir/random.cc.o"
  "CMakeFiles/kadop_common.dir/random.cc.o.d"
  "CMakeFiles/kadop_common.dir/status.cc.o"
  "CMakeFiles/kadop_common.dir/status.cc.o.d"
  "libkadop_common.a"
  "libkadop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kadop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
